//! TCP event ingestion: remote clients feed tuples into a deployed job
//! over a length-prefixed binary protocol.
//!
//! The paper's testbed drives servers from 16 separate client machines;
//! this module is that wire path. The wire format (frame layout,
//! encoding, the streaming [`FrameDecoder`]) lives in [`crate::msg`];
//! this module owns the sockets and the coalescing serve loop.
//!
//! ## Coalesced ingress
//!
//! The serve loop is built around one invariant: **all frames that
//! arrive in one socket read enter the scheduler as one batch.** Each
//! connection owns a [`FrameDecoder`] (a reusable buffer that carries
//! partial frames across reads); every loop iteration issues a single
//! `read`, decodes every frame it completed, and hands the whole set to
//! [`Runtime::ingest_frames`] — which routes the tuples of *all* those
//! frames and splices the resulting messages into the scheduler's
//! per-shard mailboxes with one CAS, one hint update and one wake per
//! shard (`ShardedScheduler::submit_batch`). Under burst arrival the
//! per-frame cost therefore collapses to the decode itself: the
//! syscall, the scheduler publication and the worker wake are all paid
//! once per read, not once per frame. `SchedulerStats::frames_coalesced`
//! / `net_batches` record the achieved coalescing ratio.

use crate::runtime::Runtime;
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

pub use crate::msg::{
    decode_payload, encode_frame, FrameDecoder, IngestFrame, HEADER_WIRE, MAX_FRAME, TUPLE_WIRE,
};

/// Read one frame from a stream. `Ok(None)` signals a clean EOF at a
/// frame boundary.
///
/// This is the one-frame-at-a-time convenience (two `read_exact` calls,
/// a payload allocation per frame); the serve loop does **not** use it —
/// it runs a [`FrameDecoder`] so that every frame available in one
/// socket read is decoded and submitted as one batch.
pub fn read_frame(stream: &mut impl Read) -> io::Result<Option<IngestFrame>> {
    let mut len_buf = [0u8; 4];
    match stream.read_exact(&mut len_buf) {
        Ok(()) => {}
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    let len = u32::from_be_bytes(len_buf);
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds cap {MAX_FRAME}"),
        ));
    }
    let mut payload = vec![0u8; len as usize];
    stream.read_exact(&mut payload)?;
    decode_payload(&payload).map(Some)
}

/// A TCP ingestion server feeding a [`Runtime`]. One thread per
/// connection (client counts are small: the paper uses 16 client
/// machines).
pub struct IngestServer {
    addr: std::net::SocketAddr,
    accept_thread: Option<JoinHandle<()>>,
    stop: Arc<AtomicBool>,
    frames: Arc<AtomicU64>,
    dropped: Arc<AtomicU64>,
}

impl IngestServer {
    /// Bind and start serving. Frames addressed to jobs this runtime
    /// has not deployed are dropped (counted via
    /// [`frames_dropped`](Self::frames_dropped), not fatal): clients
    /// may race deployment.
    pub fn start(runtime: Arc<Runtime>, addr: impl ToSocketAddrs) -> io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let stop = Arc::new(AtomicBool::new(false));
        let frames = Arc::new(AtomicU64::new(0));
        let dropped = Arc::new(AtomicU64::new(0));
        let stop2 = stop.clone();
        let frames2 = frames.clone();
        let dropped2 = dropped.clone();
        let accept_thread = std::thread::Builder::new()
            .name("cameo-ingest-accept".into())
            .spawn(move || {
                let mut conns: Vec<JoinHandle<()>> = Vec::new();
                while !stop2.load(Ordering::Acquire) {
                    match listener.accept() {
                        Ok((stream, _peer)) => {
                            stream.set_nonblocking(false).ok();
                            let rt = runtime.clone();
                            let stop3 = stop2.clone();
                            let frames3 = frames2.clone();
                            let dropped3 = dropped2.clone();
                            conns.push(
                                std::thread::Builder::new()
                                    .name("cameo-ingest-conn".into())
                                    .spawn(move || serve_conn(rt, stream, stop3, frames3, dropped3))
                                    .expect("spawn conn thread"),
                            );
                        }
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                            std::thread::sleep(std::time::Duration::from_millis(5));
                        }
                        Err(_) => break,
                    }
                }
                for c in conns {
                    let _ = c.join();
                }
            })
            .expect("spawn accept thread");
        Ok(IngestServer {
            addr: local,
            accept_thread: Some(accept_thread),
            stop,
            frames,
            dropped,
        })
    }

    /// The address the server is listening on.
    pub fn local_addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// Frames successfully ingested so far (dropped frames excluded).
    pub fn frames_received(&self) -> u64 {
        self.frames.load(Ordering::Relaxed)
    }

    /// Well-formed frames dropped because their jobs-table slot was
    /// vacant (job never deployed, or already retired) or its occupant
    /// was draining mid-`undeploy`.
    pub fn frames_dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Stop accepting and join every connection thread.
    pub fn stop(mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(h) = self.accept_thread.take() {
            let _ = h.join();
        }
    }
}

impl Drop for IngestServer {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(h) = self.accept_thread.take() {
            let _ = h.join();
        }
    }
}

/// Per-connection serve loop: one `read` per iteration, every frame the
/// read completed submitted as one batch. See the module docs.
fn serve_conn(
    rt: Arc<Runtime>,
    mut stream: TcpStream,
    stop: Arc<AtomicBool>,
    frames: Arc<AtomicU64>,
    dropped: Arc<AtomicU64>,
) {
    stream
        .set_read_timeout(Some(std::time::Duration::from_millis(200)))
        .ok();
    let mut decoder = FrameDecoder::new();
    // Reused across reads: the drain below returns it to len 0 with its
    // capacity intact, so steady-state decoding allocates no frame
    // vector either.
    let mut batch: Vec<IngestFrame> = Vec::new();
    loop {
        if stop.load(Ordering::Acquire) {
            return;
        }
        let outcome = decoder.read_frames(&mut stream, &mut batch);
        // Whatever decoded before an error still counts — ingest it
        // before deciding the connection's fate.
        if !batch.is_empty() {
            let res = rt.ingest_frames(batch.drain(..));
            frames.fetch_add(res.frames as u64, Ordering::Relaxed);
            dropped.fetch_add(res.dropped as u64, Ordering::Relaxed);
        }
        match outcome {
            Ok(Some(_)) => {}
            Ok(None) => return, // clean EOF
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                continue; // poll the stop flag
            }
            Err(_) => return, // protocol violation or reset
        }
    }
}

/// Client-side sender.
pub struct IngestClient {
    stream: TcpStream,
    /// Per-frame encode buffers, reused across
    /// [`send_many`](Self::send_many) calls: frame `i` of a burst is
    /// encoded into `bufs[i]`, and the burst goes out as one vectored
    /// write over those buffers — no copy into a combined buffer.
    bufs: Vec<Vec<u8>>,
}

impl IngestClient {
    /// Connect to an [`IngestServer`] (Nagle disabled — frames are
    /// latency-sensitive).
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(IngestClient {
            stream,
            bufs: Vec::new(),
        })
    }

    /// Reject a frame the server is guaranteed to refuse *before* it
    /// poisons the stream: an oversized frame would pass the local
    /// write, then kill the connection server-side with no client
    /// error until much later.
    fn check_frame(frame: &IngestFrame) -> io::Result<()> {
        if frame.wire_len() > 4 + MAX_FRAME as usize {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!(
                    "frame of {} tuples exceeds the {MAX_FRAME}-byte wire cap",
                    frame.tuples.len()
                ),
            ));
        }
        Ok(())
    }

    /// Send one frame (one `write` syscall).
    pub fn send(&mut self, frame: &IngestFrame) -> io::Result<()> {
        Self::check_frame(frame)?;
        self.stream.write_all(&encode_frame(frame))
    }

    /// Send a whole burst of frames with a single vectored write
    /// (`writev`): each frame is encoded into its own reusable buffer
    /// and the kernel gathers them — no copy of every frame into one
    /// combined scratch buffer per burst. Over loopback (and any path
    /// without mid-stream segmentation) the burst lands in the server's
    /// buffer as one unit, so the serve loop's next read picks up *all*
    /// of it and submits it as one scheduler batch — the client half of
    /// frame coalescing.
    pub fn send_many(&mut self, frames: &[IngestFrame]) -> io::Result<()> {
        if frames.is_empty() {
            return Ok(());
        }
        if self.bufs.len() < frames.len() {
            self.bufs.resize_with(frames.len(), Vec::new);
        }
        for (f, buf) in frames.iter().zip(self.bufs.iter_mut()) {
            Self::check_frame(f)?;
            buf.clear();
            f.encode_into(buf);
        }
        write_all_vectored(&mut self.stream, &self.bufs[..frames.len()])
    }

    /// Flush the underlying stream.
    pub fn flush(&mut self) -> io::Result<()> {
        self.stream.flush()
    }
}

/// Write every buffer in `bufs`, gathering as many as possible into
/// each `writev` syscall. Short writes (rare on a blocking socket —
/// signals, tiny socket buffers) restart past the bytes already sent
/// by rebuilding the slice table from the current offset; the rebuild
/// is O(frames) and only paid on the short-write path.
fn write_all_vectored(stream: &mut impl Write, bufs: &[Vec<u8>]) -> io::Result<()> {
    let total: usize = bufs.iter().map(|b| b.len()).sum();
    let mut written = 0usize;
    while written < total {
        let mut slices: Vec<io::IoSlice<'_>> = Vec::with_capacity(bufs.len());
        let mut skip = written;
        for b in bufs {
            if skip >= b.len() {
                skip -= b.len();
                continue;
            }
            slices.push(io::IoSlice::new(&b[skip..]));
            skip = 0;
        }
        match stream.write_vectored(&slices) {
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::WriteZero,
                    "socket accepted zero bytes of a frame burst",
                ))
            }
            Ok(n) => written += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use cameo_core::time::LogicalTime;
    use cameo_dataflow::event::Tuple;

    fn frame(n: usize) -> IngestFrame {
        IngestFrame {
            job: 3,
            source: 7,
            tuples: (0..n as u64)
                .map(|i| Tuple::new(i, i as i64 * 2, LogicalTime(1_000 + i)))
                .collect(),
        }
    }

    #[test]
    fn read_frame_streams_multiple() {
        let a = frame(2);
        let b = frame(4);
        let mut bytes = encode_frame(&a);
        bytes.extend_from_slice(&encode_frame(&b));
        let mut cursor = std::io::Cursor::new(bytes);
        assert_eq!(read_frame(&mut cursor).unwrap().unwrap(), a);
        assert_eq!(read_frame(&mut cursor).unwrap().unwrap(), b);
        assert!(read_frame(&mut cursor).unwrap().is_none(), "clean EOF");
    }

    #[test]
    fn oversized_frame_rejected() {
        let mut bytes = (MAX_FRAME + 1).to_be_bytes().to_vec();
        bytes.extend_from_slice(&[0u8; 16]);
        let mut cursor = std::io::Cursor::new(bytes);
        assert!(read_frame(&mut cursor).is_err());
    }

    #[test]
    fn client_rejects_oversized_frames_before_writing() {
        // The server would refuse the frame and drop the connection;
        // the client must error at the offending call instead of
        // silently poisoning the stream.
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let mut client = IngestClient::connect(listener.local_addr().unwrap()).unwrap();
        let too_big = IngestFrame {
            job: 0,
            source: 0,
            tuples: vec![Tuple::new(0, 0, LogicalTime(1)); (MAX_FRAME as usize / TUPLE_WIRE) + 1],
        };
        let err = client.send(&too_big).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
        let err = client.send_many(&[frame(1), too_big]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
        // An in-cap frame still goes through.
        client.send(&frame(3)).unwrap();
    }

    #[test]
    fn write_all_vectored_survives_short_writes() {
        /// A writer that accepts at most 3 bytes per call, forcing the
        /// slice-table rebuild on every iteration (including rebuilds
        /// that start mid-buffer).
        struct Trickle(Vec<u8>);
        impl std::io::Write for Trickle {
            fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
                let n = buf.len().min(3);
                self.0.extend_from_slice(&buf[..n]);
                Ok(n)
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let bufs = vec![
            b"hello".to_vec(),
            Vec::new(),
            b"writev".to_vec(),
            b"!".to_vec(),
        ];
        let mut sink = Trickle(Vec::new());
        write_all_vectored(&mut sink, &bufs).unwrap();
        assert_eq!(sink.0, b"hellowritev!");
    }

    #[test]
    fn send_many_round_trips_over_loopback() {
        // The vectored path must deliver byte-identical frames.
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let frames: Vec<IngestFrame> = (1..=5).map(frame).collect();
        let expect = frames.clone();
        let server = std::thread::spawn(move || {
            let (mut conn, _) = listener.accept().unwrap();
            let mut got = Vec::new();
            while let Some(f) = read_frame(&mut conn).unwrap() {
                got.push(f);
            }
            got
        });
        let mut client = IngestClient::connect(addr).unwrap();
        client.send_many(&frames).unwrap();
        // A second burst reuses the per-frame buffers.
        client.send_many(&frames[..2]).unwrap();
        drop(client);
        let got = server.join().unwrap();
        assert_eq!(got.len(), 7);
        assert_eq!(&got[..5], &expect[..]);
        assert_eq!(&got[5..], &expect[..2]);
    }
}
