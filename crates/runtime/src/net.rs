//! TCP event ingestion: remote clients feed tuples into a deployed job
//! over a length-prefixed binary protocol.
//!
//! The paper's testbed drives servers from 16 separate client machines;
//! this module is that wire path. Framing follows the networking-guide
//! conventions: a 4-byte big-endian length prefix, then the payload —
//! explicit bounds, no partial-frame surprises, and a hard frame-size
//! cap so a misbehaving client cannot balloon memory.
//!
//! ```text
//! frame   := len:u32be payload
//! payload := job:u32le source:u32le count:u32le tuple*
//! tuple   := key:u64le value:i64le time:u64le
//! ```

use crate::runtime::{JobHandle, Runtime};
use cameo_core::time::LogicalTime;
use cameo_dataflow::event::Tuple;
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Maximum accepted frame, matching a generous batch of ~43k tuples.
pub const MAX_FRAME: u32 = 1 << 20;
const TUPLE_WIRE: usize = 24;
const HEADER_WIRE: usize = 12;

/// One decoded ingest frame.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct IngestFrame {
    pub job: u32,
    pub source: u32,
    pub tuples: Vec<Tuple>,
}

/// Encode a frame (length prefix included).
pub fn encode_frame(frame: &IngestFrame) -> Vec<u8> {
    let payload_len = HEADER_WIRE + frame.tuples.len() * TUPLE_WIRE;
    let mut buf = Vec::with_capacity(4 + payload_len);
    buf.extend_from_slice(&(payload_len as u32).to_be_bytes());
    buf.extend_from_slice(&frame.job.to_le_bytes());
    buf.extend_from_slice(&frame.source.to_le_bytes());
    buf.extend_from_slice(&(frame.tuples.len() as u32).to_le_bytes());
    for t in &frame.tuples {
        buf.extend_from_slice(&t.key.to_le_bytes());
        buf.extend_from_slice(&t.value.to_le_bytes());
        buf.extend_from_slice(&t.time.0.to_le_bytes());
    }
    buf
}

/// Decode a payload (after the length prefix has been stripped).
pub fn decode_payload(payload: &[u8]) -> io::Result<IngestFrame> {
    if payload.len() < HEADER_WIRE {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "payload shorter than header",
        ));
    }
    let job = u32::from_le_bytes(payload[0..4].try_into().unwrap());
    let source = u32::from_le_bytes(payload[4..8].try_into().unwrap());
    let count = u32::from_le_bytes(payload[8..12].try_into().unwrap()) as usize;
    let expect = HEADER_WIRE + count * TUPLE_WIRE;
    if payload.len() != expect {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("bad frame: {} bytes for {count} tuples", payload.len()),
        ));
    }
    let mut tuples = Vec::with_capacity(count);
    let mut off = HEADER_WIRE;
    for _ in 0..count {
        let key = u64::from_le_bytes(payload[off..off + 8].try_into().unwrap());
        let value = i64::from_le_bytes(payload[off + 8..off + 16].try_into().unwrap());
        let time = u64::from_le_bytes(payload[off + 16..off + 24].try_into().unwrap());
        tuples.push(Tuple::new(key, value, LogicalTime(time)));
        off += TUPLE_WIRE;
    }
    Ok(IngestFrame {
        job,
        source,
        tuples,
    })
}

/// Read one frame from a stream. `Ok(None)` signals a clean EOF at a
/// frame boundary.
pub fn read_frame(stream: &mut impl Read) -> io::Result<Option<IngestFrame>> {
    let mut len_buf = [0u8; 4];
    match stream.read_exact(&mut len_buf) {
        Ok(()) => {}
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    let len = u32::from_be_bytes(len_buf);
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds cap {MAX_FRAME}"),
        ));
    }
    let mut payload = vec![0u8; len as usize];
    stream.read_exact(&mut payload)?;
    decode_payload(&payload).map(Some)
}

/// A TCP ingestion server feeding a [`Runtime`]. One thread per
/// connection (client counts are small: the paper uses 16 client
/// machines).
pub struct IngestServer {
    addr: std::net::SocketAddr,
    accept_thread: Option<JoinHandle<()>>,
    stop: Arc<AtomicBool>,
    frames: Arc<AtomicU64>,
}

impl IngestServer {
    /// Bind and start serving. Frames for unknown jobs are dropped
    /// (counted, not fatal): clients may race deployment.
    pub fn start(runtime: Arc<Runtime>, addr: impl ToSocketAddrs) -> io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let stop = Arc::new(AtomicBool::new(false));
        let frames = Arc::new(AtomicU64::new(0));
        let stop2 = stop.clone();
        let frames2 = frames.clone();
        let accept_thread = std::thread::Builder::new()
            .name("cameo-ingest-accept".into())
            .spawn(move || {
                let mut conns: Vec<JoinHandle<()>> = Vec::new();
                while !stop2.load(Ordering::Acquire) {
                    match listener.accept() {
                        Ok((stream, _peer)) => {
                            stream.set_nonblocking(false).ok();
                            let rt = runtime.clone();
                            let stop3 = stop2.clone();
                            let frames3 = frames2.clone();
                            conns.push(
                                std::thread::Builder::new()
                                    .name("cameo-ingest-conn".into())
                                    .spawn(move || serve_conn(rt, stream, stop3, frames3))
                                    .expect("spawn conn thread"),
                            );
                        }
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                            std::thread::sleep(std::time::Duration::from_millis(5));
                        }
                        Err(_) => break,
                    }
                }
                for c in conns {
                    let _ = c.join();
                }
            })
            .expect("spawn accept thread");
        Ok(IngestServer {
            addr: local,
            accept_thread: Some(accept_thread),
            stop,
            frames,
        })
    }

    pub fn local_addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// Frames successfully ingested so far.
    pub fn frames_received(&self) -> u64 {
        self.frames.load(Ordering::Relaxed)
    }

    pub fn stop(mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(h) = self.accept_thread.take() {
            let _ = h.join();
        }
    }
}

impl Drop for IngestServer {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(h) = self.accept_thread.take() {
            let _ = h.join();
        }
    }
}

fn serve_conn(
    rt: Arc<Runtime>,
    mut stream: TcpStream,
    stop: Arc<AtomicBool>,
    frames: Arc<AtomicU64>,
) {
    stream
        .set_read_timeout(Some(std::time::Duration::from_millis(200)))
        .ok();
    loop {
        if stop.load(Ordering::Acquire) {
            return;
        }
        match read_frame(&mut stream) {
            Ok(Some(frame)) => {
                rt.ingest(JobHandle(frame.job), frame.source, frame.tuples);
                frames.fetch_add(1, Ordering::Relaxed);
            }
            Ok(None) => return, // clean EOF
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                continue; // poll the stop flag
            }
            Err(_) => return, // protocol violation or reset
        }
    }
}

/// Client-side sender.
pub struct IngestClient {
    stream: TcpStream,
}

impl IngestClient {
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(IngestClient { stream })
    }

    pub fn send(&mut self, frame: &IngestFrame) -> io::Result<()> {
        self.stream.write_all(&encode_frame(frame))
    }

    pub fn flush(&mut self) -> io::Result<()> {
        self.stream.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame(n: usize) -> IngestFrame {
        IngestFrame {
            job: 3,
            source: 7,
            tuples: (0..n as u64)
                .map(|i| Tuple::new(i, i as i64 * 2, LogicalTime(1_000 + i)))
                .collect(),
        }
    }

    #[test]
    fn frame_roundtrip() {
        let f = frame(5);
        let bytes = encode_frame(&f);
        let decoded = decode_payload(&bytes[4..]).unwrap();
        assert_eq!(decoded, f);
    }

    #[test]
    fn empty_frame_roundtrip() {
        let f = frame(0);
        let bytes = encode_frame(&f);
        assert_eq!(decode_payload(&bytes[4..]).unwrap(), f);
    }

    #[test]
    fn truncated_payload_rejected() {
        let f = frame(3);
        let bytes = encode_frame(&f);
        assert!(decode_payload(&bytes[4..bytes.len() - 1]).is_err());
        assert!(decode_payload(&bytes[4..10]).is_err());
    }

    #[test]
    fn corrupt_count_rejected() {
        let f = frame(2);
        let mut bytes = encode_frame(&f);
        // Claim 100 tuples in the header.
        bytes[4 + 8..4 + 12].copy_from_slice(&100u32.to_le_bytes());
        assert!(decode_payload(&bytes[4..]).is_err());
    }

    #[test]
    fn read_frame_streams_multiple() {
        let a = frame(2);
        let b = frame(4);
        let mut bytes = encode_frame(&a);
        bytes.extend_from_slice(&encode_frame(&b));
        let mut cursor = std::io::Cursor::new(bytes);
        assert_eq!(read_frame(&mut cursor).unwrap().unwrap(), a);
        assert_eq!(read_frame(&mut cursor).unwrap().unwrap(), b);
        assert!(read_frame(&mut cursor).unwrap().is_none(), "clean EOF");
    }

    #[test]
    fn oversized_frame_rejected() {
        let mut bytes = (MAX_FRAME + 1).to_be_bytes().to_vec();
        bytes.extend_from_slice(&[0u8; 16]);
        let mut cursor = std::io::Cursor::new(bytes);
        assert!(read_frame(&mut cursor).is_err());
    }
}
