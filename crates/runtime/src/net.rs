//! TCP event ingestion: remote clients feed tuples into a deployed job
//! over a length-prefixed binary protocol (wire format v2 — see
//! [`crate::msg`]).
//!
//! The paper's testbed drives servers from 16 separate client machines;
//! the ROADMAP's north star is millions of users. This module serves
//! both from a **fixed handful of threads**: one accept loop plus N
//! epoll-driven serve loops ([`IngestServerConfig::with_loops`],
//! threads `cameo-net-0..n`), each owning a disjoint share of the
//! connections, so server thread count and idle-connection cost are
//! O(1) in the connection count — the C100K shape — instead of one OS
//! thread (≈8 MiB of stack address space and a scheduler entry) per
//! client, while decode throughput scales with loops instead of
//! capping at one core.
//!
//! ## Accept → assign → per-loop decode
//!
//! The accept thread owns the listener. Each accepted connection is
//! assigned to the **least-loaded** serve loop (fewest open
//! connections), parked in that loop's handoff queue, and announced by
//! ringing the loop's [`cameo_core::epoll::WakePipe`] — a non-blocking
//! pipe whose read end sits in the loop's own epoll set, so the
//! sleeping loop wakes immediately, drains the doorbell, and registers
//! the new descriptors. From then on the connection belongs to that
//! loop alone: its reads, its decoded frames, its NACKs, and its
//! close all happen on the owning loop, with no cross-loop locking on
//! the data path.
//!
//! ## Coalesced ingress, per readiness burst, per loop
//!
//! Each serve loop keeps PR 4's invariant locally and strengthens it:
//! **all frames that arrive in one of its readiness bursts enter the
//! scheduler as one batch.** Each `epoll_wait` return delivers the set
//! of currently readable connections owned by that loop; the loop
//! issues one `read` per ready connection into that connection's own
//! [`FrameDecoder`] (an adaptive buffer that carries partial frames
//! across reads and across bursts), then hands the frames of *all*
//! ready connections to [`Runtime::ingest_frames`] as a single call —
//! one mailbox CAS, one hint update and one worker wake per shard for
//! the entire burst, however many connections contributed. Where the
//! thread-per-connection loop coalesced within one socket, an event
//! loop coalesces *across* its sockets, so batching gets stronger as
//! connection count grows. Readiness is level-triggered: a connection
//! with more buffered data than one read pulled simply reports ready
//! again on the loop's next wait, which keeps every loop
//! starvation-free without read-until-`EAGAIN` inner loops.
//!
//! `SchedulerStats::frames_coalesced` / `net_batches` record the
//! achieved frames-per-batch ratio; [`IngestServer::readiness_bursts`]
//! and [`IngestServer::conns_peak`] describe the loops in aggregate,
//! and [`IngestServer::loop_stats`] exposes the same counters per loop
//! so skew across loops is observable.
//!
//! ## Overload behavior
//!
//! When the process runs out of file descriptors (`EMFILE`/`ENFILE`),
//! the accept path sheds the pending connection gracefully — accept it
//! using a reserved descriptor, close it, count it
//! ([`IngestServer::accepts_shed`]) — instead of tearing down the
//! server or spinning on a backlog that level-triggered readiness would
//! re-report forever.
//!
//! On non-Linux targets (no epoll) the server transparently falls back
//! to a thread-per-connection loop (connections are still attributed
//! to the configured loops least-loaded, so per-loop counters behave
//! the same); the wire format and totals are identical.

use crate::runtime::Runtime;
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

pub use crate::msg::{
    decode_payload, encode_frame, read_nack, FrameDecoder, IngestFrame, NackFrame, HEADER_WIRE,
    MAX_FRAME, NACK_WIRE, TUPLE_WIRE,
};

/// Read one frame from a stream. `Ok(None)` signals a clean EOF at a
/// frame boundary.
///
/// This is the one-frame-at-a-time convenience (two `read_exact` calls,
/// a payload allocation per frame); the serve loop does **not** use it —
/// it runs a [`FrameDecoder`] so that every frame available in one
/// readiness burst is decoded and submitted as one batch.
pub fn read_frame(stream: &mut impl Read) -> io::Result<Option<IngestFrame>> {
    let mut len_buf = [0u8; 4];
    match stream.read_exact(&mut len_buf) {
        Ok(()) => {}
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    let len = u32::from_be_bytes(len_buf);
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds cap {MAX_FRAME}"),
        ));
    }
    let mut payload = vec![0u8; len as usize];
    stream.read_exact(&mut payload)?;
    decode_payload(&payload).map(Some)
}

/// Counters kept **per serve loop** and summed by the server handle's
/// accessors; [`IngestServer::loop_stats`] exposes them unsummed.
#[derive(Default)]
struct Counters {
    frames: AtomicU64,
    dropped: AtomicU64,
    gen_rejected: AtomicU64,
    readiness_bursts: AtomicU64,
    conns_open: AtomicU64,
    conns_peak: AtomicU64,
    accepts_shed: AtomicU64,
    nacks_sent: AtomicU64,
    nacks_dropped: AtomicU64,
}

impl Counters {
    /// Fold one `ingest_frames` outcome into the wire counters.
    fn record(&self, out: &crate::runtime::IngestOutcome) {
        self.frames.fetch_add(out.frames as u64, Ordering::Relaxed);
        self.dropped
            .fetch_add(out.dropped as u64, Ordering::Relaxed);
        self.gen_rejected
            .fetch_add(out.gen_rejected as u64, Ordering::Relaxed);
    }

    fn conn_opened(&self) {
        let open = self.conns_open.fetch_add(1, Ordering::Relaxed) + 1;
        self.conns_peak.fetch_max(open, Ordering::Relaxed);
    }

    fn conn_closed(&self) {
        self.conns_open.fetch_sub(1, Ordering::Relaxed);
    }

    fn snapshot(&self) -> LoopStats {
        LoopStats {
            frames: self.frames.load(Ordering::Relaxed),
            dropped: self.dropped.load(Ordering::Relaxed),
            gen_rejected: self.gen_rejected.load(Ordering::Relaxed),
            readiness_bursts: self.readiness_bursts.load(Ordering::Relaxed),
            conns_open: self.conns_open.load(Ordering::Relaxed),
            conns_peak: self.conns_peak.load(Ordering::Relaxed),
            accepts_shed: self.accepts_shed.load(Ordering::Relaxed),
            nacks_sent: self.nacks_sent.load(Ordering::Relaxed),
            nacks_dropped: self.nacks_dropped.load(Ordering::Relaxed),
        }
    }
}

/// One serve loop's counters, as returned by
/// [`IngestServer::loop_stats`]. Every field sums across loops to the
/// matching [`IngestServer`] accessor — the handle totals *are* these
/// sums — so skew between loops (connection imbalance, one loop
/// carrying all the bursts) is directly observable, for the bench
/// artifact today and elastic loop scaling later.
#[derive(Clone, Copy, Debug, Default)]
pub struct LoopStats {
    /// Frames this loop's connections ingested successfully.
    pub frames: u64,
    /// Frames dropped at routing (vacant/draining slot).
    pub dropped: u64,
    /// Frames refused by the wire-v2 generation check.
    pub gen_rejected: u64,
    /// Readiness bursts this loop served that reported at least one
    /// ready *connection* (doorbell-only wakeups are not bursts).
    pub readiness_bursts: u64,
    /// Connections currently owned by this loop (handed-off
    /// connections count from assignment, before registration).
    pub conns_open: u64,
    /// High-water mark of `conns_open`.
    pub conns_peak: u64,
    /// Connections shed at accept (fd exhaustion) that the assignment
    /// policy would have routed to this loop.
    pub accepts_shed: u64,
    /// NACK control frames written back on this loop's connections.
    pub nacks_sent: u64,
    /// NACKs abandoned best-effort on this loop's connections.
    pub nacks_dropped: u64,
}

/// Configuration for [`IngestServer::start_with`]: how many epoll serve
/// loops share the connection load.
///
/// Each loop is one thread (`cameo-net-{i}`) owning its own epoll set,
/// connection slab and decode state; the accept thread assigns every
/// new connection to the least-loaded loop. One loop (the default, and
/// what [`IngestServer::start`] uses) is the PR 6 single-loop shape;
/// more loops lift the single-core decode ceiling on multicore hosts.
/// On non-Linux targets the count only partitions the counters — the
/// fallback is thread-per-connection either way.
#[derive(Clone, Copy, Debug)]
pub struct IngestServerConfig {
    loops: usize,
}

impl Default for IngestServerConfig {
    fn default() -> Self {
        IngestServerConfig { loops: 1 }
    }
}

impl IngestServerConfig {
    /// The default configuration: one serve loop.
    pub fn new() -> Self {
        Self::default()
    }

    /// Serve connections from `n` epoll event loops (clamped to at
    /// least 1). Thread cost is exactly `1 + n` regardless of
    /// connection count.
    pub fn with_loops(mut self, n: usize) -> Self {
        self.loops = n.max(1);
        self
    }

    /// The configured serve-loop count.
    pub fn loops(&self) -> usize {
        self.loops
    }
}

/// Per-loop shared state: the loop's counters plus (on Linux) the
/// accept→loop fd-handoff channel — a queue of freshly accepted
/// streams and the doorbell that tells the loop to drain it.
struct LoopState {
    counters: Counters,
    /// Streams accepted and assigned to this loop but not yet
    /// registered in its epoll set. Only the accept thread pushes;
    /// only the owning loop drains (on doorbell readiness).
    #[cfg(target_os = "linux")]
    pending: std::sync::Mutex<Vec<TcpStream>>,
    /// Rung by the accept thread after every push to `pending`; its
    /// read end lives in the owning loop's epoll set.
    #[cfg(target_os = "linux")]
    wake: cameo_core::epoll::WakePipe,
}

/// Write one NACK control frame back to the producer whose frame
/// failed the generation check. Best-effort: a full socket (the
/// producer is not reading) or any write error drops the NACK and
/// counts it — the rejection itself is already counted either way, and
/// a NACK must never be allowed to stall the serve loop.
fn send_nack(stream: &mut TcpStream, rej: &crate::runtime::RejectedFrame, c: &Counters) {
    let buf = NackFrame {
        job: rej.job,
        gen: rej.gen,
        expected_gen: rej.expected_gen,
    }
    .encode();
    let mut off = 0;
    // Abandoning a *partially* written control frame would desync the
    // producer's control-stream reader, so once the first byte is out
    // the remainder gets a short bounded retry (the frame is 20 bytes —
    // any drain of the socket buffer makes room for all of it). In
    // practice a write this small is all-or-nothing.
    let mut retries = 100;
    loop {
        match stream.write(&buf[off..]) {
            Ok(0) => break,
            Ok(n) => {
                off += n;
                if off == buf.len() {
                    c.nacks_sent.fetch_add(1, Ordering::Relaxed);
                    return;
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) if e.kind() == io::ErrorKind::WouldBlock && off > 0 && retries > 0 => {
                retries -= 1;
                std::thread::yield_now();
            }
            Err(_) => break,
        }
    }
    c.nacks_dropped.fetch_add(1, Ordering::Relaxed);
}

/// A TCP ingestion server feeding a [`Runtime`]. A fixed thread set —
/// one accept loop plus N epoll serve loops (see the module docs and
/// [`IngestServerConfig`]) — serves *every* connection; thread count
/// does not grow with client count.
pub struct IngestServer {
    addr: std::net::SocketAddr,
    threads: Vec<JoinHandle<()>>,
    stop: Arc<AtomicBool>,
    loops: Vec<Arc<LoopState>>,
}

impl IngestServer {
    /// Bind and start serving with one serve loop (the
    /// [`IngestServerConfig`] default). Frames addressed to jobs this
    /// runtime has not deployed are dropped (counted via
    /// [`frames_dropped`](Self::frames_dropped), not fatal), and frames
    /// carrying a stale slot generation are rejected (counted via
    /// [`gen_rejected_frames`](Self::gen_rejected_frames)): clients may
    /// race deployment and undeployment.
    pub fn start(runtime: Arc<Runtime>, addr: impl ToSocketAddrs) -> io::Result<Self> {
        Self::start_with(runtime, addr, IngestServerConfig::default())
    }

    /// Bind and start serving with an explicit configuration —
    /// [`IngestServerConfig::with_loops`] shards the connections across
    /// that many epoll serve loops (threads `cameo-net-0..n`), fed by
    /// one accept thread (`cameo-net-accept`).
    pub fn start_with(
        runtime: Arc<Runtime>,
        addr: impl ToSocketAddrs,
        config: IngestServerConfig,
    ) -> io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let stop = Arc::new(AtomicBool::new(false));
        let mut loops = Vec::with_capacity(config.loops());
        for _ in 0..config.loops() {
            loops.push(Arc::new(LoopState {
                counters: Counters::default(),
                #[cfg(target_os = "linux")]
                pending: std::sync::Mutex::new(Vec::new()),
                #[cfg(target_os = "linux")]
                wake: cameo_core::epoll::WakePipe::new()?,
            }));
        }
        let mut threads = Vec::with_capacity(config.loops() + 1);
        #[cfg(target_os = "linux")]
        for (i, ls) in loops.iter().enumerate() {
            let rt = runtime.clone();
            let ls = ls.clone();
            let stop = stop.clone();
            threads.push(
                std::thread::Builder::new()
                    .name(format!("cameo-net-{i}"))
                    .spawn(move || serve_loop(rt, ls, stop))
                    .expect("spawn ingest serve loop"),
            );
        }
        {
            let loops = loops.clone();
            let stop = stop.clone();
            #[cfg(not(target_os = "linux"))]
            let runtime = runtime.clone();
            threads.push(
                std::thread::Builder::new()
                    .name("cameo-net-accept".into())
                    .spawn(move || {
                        #[cfg(target_os = "linux")]
                        accept_loop(listener, loops, stop);
                        #[cfg(not(target_os = "linux"))]
                        serve_fallback(runtime, listener, stop, loops);
                    })
                    .expect("spawn ingest accept thread"),
            );
        }
        #[cfg(not(target_os = "linux"))]
        let _ = runtime;
        Ok(IngestServer {
            addr: local,
            threads,
            stop,
            loops,
        })
    }

    /// The address the server is listening on.
    pub fn local_addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    fn sum(&self, f: impl Fn(&Counters) -> &AtomicU64) -> u64 {
        self.loops
            .iter()
            .map(|l| f(&l.counters).load(Ordering::Relaxed))
            .sum()
    }

    /// Frames successfully ingested so far (dropped and gen-rejected
    /// frames excluded), summed across loops.
    pub fn frames_received(&self) -> u64 {
        self.sum(|c| &c.frames)
    }

    /// Well-formed frames dropped because their jobs-table slot was
    /// vacant (job never deployed, or already retired) or its occupant
    /// was draining mid-`undeploy`.
    pub fn frames_dropped(&self) -> u64 {
        self.sum(|c| &c.dropped)
    }

    /// Frames rejected at the wire-format-v2 generation check: the
    /// sender's handle went stale (its job was undeployed, the slot
    /// possibly reused) while the frame was in flight. Never delivered
    /// to the slot's new occupant.
    pub fn gen_rejected_frames(&self) -> u64 {
        self.sum(|c| &c.gen_rejected)
    }

    /// Readiness bursts served across all loops: `epoll_wait` returns
    /// that delivered at least one ready *connection* (pure doorbell
    /// wakeups excluded). All frames one loop reads in one burst enter
    /// the scheduler as one batch, so `frames_received /
    /// readiness_bursts` is the cross-connection coalescing ratio.
    /// Zero on the non-epoll fallback path.
    pub fn readiness_bursts(&self) -> u64 {
        self.sum(|c| &c.readiness_bursts)
    }

    /// Connections currently open, summed across loops.
    pub fn conns_open(&self) -> u64 {
        self.sum(|c| &c.conns_open)
    }

    /// High-water mark of concurrently open connections: the sum of
    /// the per-loop high-water marks (an exact concurrent peak when
    /// assignment is stable, an upper bound under churn).
    pub fn conns_peak(&self) -> u64 {
        self.sum(|c| &c.conns_peak)
    }

    /// NACK control frames ([`NackFrame`]) written back to producers in
    /// response to generation-rejected frames — each on the loop that
    /// owns the producer's connection. Under normal operation
    /// `nacks_sent + nacks_dropped == gen_rejected_frames`.
    pub fn nacks_sent(&self) -> u64 {
        self.sum(|c| &c.nacks_sent)
    }

    /// NACKs abandoned best-effort: the producer's socket had no room
    /// (it is not reading), its connection closed before the NACK could
    /// be written, or the write failed outright.
    pub fn nacks_dropped(&self) -> u64 {
        self.sum(|c| &c.nacks_dropped)
    }

    /// Connections shed at accept because the process was out of file
    /// descriptors (`EMFILE`/`ENFILE`): accepted via the reserve
    /// descriptor, closed immediately, server intact.
    pub fn accepts_shed(&self) -> u64 {
        self.sum(|c| &c.accepts_shed)
    }

    /// Per-loop counter snapshots, one entry per configured serve loop
    /// in thread order (`cameo-net-0` first). Each handle-level total
    /// above is exactly the sum of the matching field here.
    pub fn loop_stats(&self) -> Vec<LoopStats> {
        self.loops.iter().map(|l| l.counters.snapshot()).collect()
    }

    /// Stop serving and join the accept and serve-loop threads; every
    /// open connection is closed.
    pub fn stop(mut self) {
        self.stop.store(true, Ordering::Release);
        for h in self.threads.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for IngestServer {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
        for h in self.threads.drain(..) {
            let _ = h.join();
        }
    }
}

/// How long one `epoll_wait` may sleep before re-checking the stop
/// flag. Long enough to keep the idle loop cold, short enough that
/// `stop()` returns promptly.
#[cfg(target_os = "linux")]
const WAIT_MS: i32 = 25;

/// Epoll token reserved for the listening socket in the accept loop's
/// epoll set (connection tokens are table indices, which stay far
/// below this).
#[cfg(target_os = "linux")]
const LISTENER_TOKEN: u64 = u64::MAX;

/// Epoll token reserved for a serve loop's handoff doorbell (its
/// [`cameo_core::epoll::WakePipe`] read end).
#[cfg(target_os = "linux")]
const WAKE_TOKEN: u64 = u64::MAX - 1;

/// `errno` values for descriptor exhaustion (Linux).
#[cfg(target_os = "linux")]
const ENFILE: i32 = 23;
#[cfg(target_os = "linux")]
const EMFILE: i32 = 24;

/// Submit the burst batch once it holds this many frames rather than
/// accumulating a whole readiness burst first. Under load a single
/// burst can decode tens of thousands of frames (every connection's
/// buffer full); submitting in bounded chunks keeps the frames being
/// routed resident in cache and bounds the first-frame latency of a
/// burst, while sparse bursts (many connections, a frame or two each)
/// still coalesce across connections up to this size.
#[cfg(target_os = "linux")]
const SUBMIT_CHUNK: usize = 512;

/// One registered connection: its socket and the streaming decoder
/// carrying partial frames across reads. The decoder starts small
/// ([`crate::msg::ADAPTIVE_BUF_INIT`]) and grows only under load, so
/// ten thousand mostly-idle connections stay cheap.
#[cfg(target_os = "linux")]
struct Conn {
    stream: TcpStream,
    decoder: FrameDecoder,
}

/// The accept loop: owns the listener (in its own small epoll set) and
/// assigns every accepted connection to the least-loaded serve loop.
/// This thread never reads a data byte — fan-in stays on the serve
/// loops, and a connect storm can never stall decode.
#[cfg(target_os = "linux")]
fn accept_loop(listener: TcpListener, loops: Vec<Arc<LoopState>>, stop: Arc<AtomicBool>) {
    use cameo_core::epoll::Epoll;
    use std::os::unix::io::AsRawFd;

    let ep = Epoll::new().expect("epoll_create1");
    ep.add(listener.as_raw_fd(), LISTENER_TOKEN)
        .expect("register listener");
    // The reserve descriptor backing graceful EMFILE shedding: held
    // open so that, at exhaustion, dropping it frees exactly one fd to
    // accept-then-close the pending connection with.
    let mut reserve = std::fs::File::open("/dev/null").ok();
    let mut events = Vec::new();
    while !stop.load(Ordering::Acquire) {
        let n = match ep.wait(&mut events, 16, WAIT_MS) {
            Ok(n) => n,
            Err(_) => break,
        };
        if n == 0 {
            continue;
        }
        accept_burst(&listener, &loops, &mut reserve);
    }
}

/// Pick the serve loop with the fewest open connections. `conns_open`
/// is bumped at *assignment* (not registration), so a connect storm
/// arriving faster than loops drain their handoff queues still spreads
/// evenly instead of piling onto one loop.
#[cfg(target_os = "linux")]
fn least_loaded(loops: &[Arc<LoopState>]) -> &Arc<LoopState> {
    loops
        .iter()
        .min_by_key(|l| l.counters.conns_open.load(Ordering::Relaxed))
        .expect("at least one serve loop")
}

/// One epoll serve loop: owns a disjoint subset of the connections,
/// receives new ones over the handoff queue + doorbell, and keeps the
/// coalescing invariant locally — all frames of one readiness burst
/// enter the scheduler as one batch. See the module docs.
#[cfg(target_os = "linux")]
fn serve_loop(rt: Arc<Runtime>, ls: Arc<LoopState>, stop: Arc<AtomicBool>) {
    use cameo_core::epoll::Epoll;
    use std::os::unix::io::AsRawFd;

    let ep = Epoll::new().expect("epoll_create1");
    ep.add(ls.wake.read_fd(), WAKE_TOKEN)
        .expect("register handoff doorbell");
    let c = &ls.counters;
    // Slab-style connection table: the epoll token of a connection is
    // its index here, freed indices are reused LIFO.
    let mut conns: Vec<Option<Conn>> = Vec::new();
    let mut free: Vec<usize> = Vec::new();
    let mut events = Vec::new();
    // Frames decoded across all connections of the current burst; one
    // `ingest_frames` call drains it. Reused, so steady state allocates
    // nothing here.
    let mut batch: Vec<IngestFrame> = Vec::new();
    // `origins[i]` is the connection-table index that contributed
    // `batch[i]`: `ingest_frames` reports generation rejections by
    // frame ordinal, and this maps each ordinal back to the producer
    // that must be NACKed. Drained in lockstep with `batch`.
    let mut origins: Vec<usize> = Vec::new();
    while !stop.load(Ordering::Acquire) {
        let n = match ep.wait(&mut events, 1024, WAIT_MS) {
            Ok(n) => n,
            Err(_) => break,
        };
        if n == 0 {
            continue;
        }
        // A burst is only a burst if a *connection* was ready; a pure
        // doorbell wakeup reads no frames and must not dilute the
        // frames-per-burst coalescing ratio.
        if events.iter().take(n).any(|ev| ev.token != WAKE_TOKEN) {
            c.readiness_bursts.fetch_add(1, Ordering::Relaxed);
        }
        // Indices freed during this burst: reuse is deferred until the
        // burst's events are all handled, so a not-yet-processed event
        // for a closed connection can never alias a connection
        // registered later in the same burst.
        let mut freed: Vec<usize> = Vec::new();
        for ev in events.iter().take(n).copied() {
            if ev.token == WAKE_TOKEN {
                // Drain the doorbell before taking the queue: a push
                // that lands after the take re-rings, so its wake byte
                // survives into the next wait and nothing is lost.
                ls.wake.drain();
                let incoming =
                    std::mem::take(&mut *ls.pending.lock().unwrap_or_else(|p| p.into_inner()));
                for stream in incoming {
                    let idx = free.pop().unwrap_or_else(|| {
                        conns.push(None);
                        conns.len() - 1
                    });
                    if ep.add(stream.as_raw_fd(), idx as u64).is_err() {
                        free.push(idx);
                        c.conn_closed(); // assigned at accept, never served
                        continue;
                    }
                    conns[idx] = Some(Conn {
                        stream,
                        decoder: FrameDecoder::adaptive(),
                    });
                }
                continue;
            }
            let idx = ev.token as usize;
            let Some(conn) = conns.get_mut(idx).and_then(Option::as_mut) else {
                continue; // freed earlier in this burst
            };
            // One read per ready connection per burst (level-triggered
            // epoll re-reports leftovers), then decode everything it
            // completed into the shared burst batch.
            let close = match conn.decoder.fill(&mut conn.stream) {
                // Clean EOF only at a frame boundary; EOF inside a
                // partial frame is a truncation either way the
                // connection is done.
                Ok(0) => true,
                Ok(_) => {
                    let bad = conn.decoder.decode_available(&mut batch).is_err();
                    // Frames decoded before a protocol error still
                    // entered the batch: attribute everything new to
                    // this connection.
                    origins.resize(batch.len(), idx);
                    bad
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => false,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => false,
                Err(_) => true,
            };
            if close {
                // Dropping the stream closes the fd, which deregisters
                // it from the epoll set implicitly.
                conns[idx] = None;
                freed.push(idx);
                c.conn_closed();
            }
            if batch.len() >= SUBMIT_CHUNK {
                submit_burst(&rt, &mut conns, &mut batch, &mut origins, c);
            }
        }
        if !batch.is_empty() {
            // Whatever the burst's tail produced — still one scheduler
            // batch for every remaining frame of every connection.
            submit_burst(&rt, &mut conns, &mut batch, &mut origins, c);
        }
        free.append(&mut freed);
    }
}

/// Submit the accumulated burst batch and NACK every generation
/// rejection back to the connection that sent it, mapping each
/// rejection's frame ordinal through `origins`. A rejection whose
/// connection closed earlier in the same burst is counted as a dropped
/// NACK.
#[cfg(target_os = "linux")]
fn submit_burst(
    rt: &Runtime,
    conns: &mut [Option<Conn>],
    batch: &mut Vec<IngestFrame>,
    origins: &mut Vec<usize>,
    c: &Counters,
) {
    let out = rt.ingest_frames(batch.drain(..));
    for rej in &out.rejected {
        match origins
            .get(rej.index)
            .and_then(|&i| conns.get_mut(i))
            .and_then(Option::as_mut)
        {
            Some(conn) => send_nack(&mut conn.stream, rej, c),
            None => {
                c.nacks_dropped.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
    origins.clear();
    c.record(&out);
}

/// Accept every pending connection (the listener is level-triggered
/// too, but draining it here saves wait round-trips under connect
/// storms), assigning each to the least-loaded serve loop: bump the
/// loop's connection count, park the stream in its handoff queue, ring
/// its doorbell. Descriptor exhaustion sheds gracefully via the
/// reserve fd, attributed to the loop the connection would have
/// joined.
#[cfg(target_os = "linux")]
fn accept_burst(
    listener: &TcpListener,
    loops: &[Arc<LoopState>],
    reserve: &mut Option<std::fs::File>,
) {
    loop {
        match listener.accept() {
            Ok((stream, _peer)) => {
                if stream.set_nonblocking(true).is_err() {
                    continue; // drop: an unusable socket
                }
                stream.set_nodelay(true).ok();
                let target = least_loaded(loops);
                target.counters.conn_opened();
                target
                    .pending
                    .lock()
                    .unwrap_or_else(|p| p.into_inner())
                    .push(stream);
                // Ring after the push: the loop drains the doorbell
                // before taking the queue, so this ordering guarantees
                // the stream is visible by the wakeup it caused (or an
                // earlier one — equally fine).
                target.wake.wake().ok();
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
            Err(e) if matches!(e.raw_os_error(), Some(EMFILE) | Some(ENFILE)) => {
                // Out of descriptors: accept() failed but the
                // connection is still in the backlog, and level-
                // triggered readiness would re-report it forever. Free
                // one fd (the reserve), accept the connection into it,
                // close it immediately, then re-arm the reserve —
                // graceful shed, server intact.
                drop(reserve.take());
                if let Ok((doomed, _)) = listener.accept() {
                    drop(doomed);
                    least_loaded(loops)
                        .counters
                        .accepts_shed
                        .fetch_add(1, Ordering::Relaxed);
                }
                *reserve = std::fs::File::open("/dev/null").ok();
                return;
            }
            Err(_) => return,
        }
    }
}

/// Thread-per-connection fallback for targets without epoll. Each
/// connection is still attributed to the least-loaded configured loop,
/// so per-loop counters (and their handle-level sums) behave
/// identically except `readiness_bursts`, which stays zero.
#[cfg(not(target_os = "linux"))]
fn serve_fallback(
    rt: Arc<Runtime>,
    listener: TcpListener,
    stop: Arc<AtomicBool>,
    loops: Vec<Arc<LoopState>>,
) {
    let mut threads: Vec<JoinHandle<()>> = Vec::new();
    while !stop.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                stream.set_nonblocking(false).ok();
                let ls = loops
                    .iter()
                    .min_by_key(|l| l.counters.conns_open.load(Ordering::Relaxed))
                    .expect("at least one serve loop")
                    .clone();
                ls.counters.conn_opened();
                let rt = rt.clone();
                let stop = stop.clone();
                threads.push(
                    std::thread::Builder::new()
                        .name("cameo-net-conn".into())
                        .spawn(move || {
                            serve_conn_blocking(rt, stream, stop, &ls.counters);
                            ls.counters.conn_closed();
                        })
                        .expect("spawn conn thread"),
                );
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(std::time::Duration::from_millis(5));
            }
            Err(_) => break,
        }
    }
    for t in threads {
        let _ = t.join();
    }
}

/// Blocking per-connection serve loop (non-epoll fallback): one `read`
/// per iteration, every frame the read completed submitted as one
/// batch.
#[cfg(not(target_os = "linux"))]
fn serve_conn_blocking(
    rt: Arc<Runtime>,
    mut stream: TcpStream,
    stop: Arc<AtomicBool>,
    c: &Counters,
) {
    stream
        .set_read_timeout(Some(std::time::Duration::from_millis(200)))
        .ok();
    let mut decoder = FrameDecoder::new();
    let mut batch: Vec<IngestFrame> = Vec::new();
    loop {
        if stop.load(Ordering::Acquire) {
            return;
        }
        let outcome = decoder.read_frames(&mut stream, &mut batch);
        // Whatever decoded before an error still counts — ingest it
        // before deciding the connection's fate. Every frame came from
        // this one connection, so rejections NACK straight back here.
        if !batch.is_empty() {
            let out = rt.ingest_frames(batch.drain(..));
            for rej in &out.rejected {
                send_nack(&mut stream, rej, c);
            }
            c.record(&out);
        }
        match outcome {
            Ok(Some(_)) => {}
            Ok(None) => return, // clean EOF
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                continue; // poll the stop flag
            }
            Err(_) => return, // protocol violation or reset
        }
    }
}

/// Client-side sender.
pub struct IngestClient {
    stream: TcpStream,
    /// Per-frame encode buffers, reused across
    /// [`send_many`](Self::send_many) calls: frame `i` of a burst is
    /// encoded into `bufs[i]`, and the burst goes out as one vectored
    /// write over those buffers — no copy into a combined buffer.
    bufs: Vec<Vec<u8>>,
}

impl IngestClient {
    /// Connect to an [`IngestServer`] (Nagle disabled — frames are
    /// latency-sensitive).
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(IngestClient {
            stream,
            bufs: Vec::new(),
        })
    }

    /// Reject a frame the server is guaranteed to refuse *before* it
    /// poisons the stream: an oversized frame would pass the local
    /// write, then kill the connection server-side with no client
    /// error until much later.
    fn check_frame(frame: &IngestFrame) -> io::Result<()> {
        if frame.wire_len() > 4 + MAX_FRAME as usize {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!(
                    "frame of {} tuples exceeds the {MAX_FRAME}-byte wire cap",
                    frame.tuples.len()
                ),
            ));
        }
        Ok(())
    }

    /// Send one frame (one `write` syscall). Use
    /// [`IngestFrame::addressed`] to stamp the frame's slot and
    /// generation from a live [`crate::runtime::JobHandle`].
    pub fn send(&mut self, frame: &IngestFrame) -> io::Result<()> {
        Self::check_frame(frame)?;
        self.stream.write_all(&encode_frame(frame))
    }

    /// Send a whole burst of frames with a single vectored write
    /// (`writev`): each frame is encoded into its own reusable buffer
    /// and the kernel gathers them — no copy of every frame into one
    /// combined scratch buffer per burst. Over loopback (and any path
    /// without mid-stream segmentation) the burst lands in the server's
    /// buffer as one unit, so the serve loop's next read picks up *all*
    /// of it and submits it as one scheduler batch — the client half of
    /// frame coalescing.
    pub fn send_many(&mut self, frames: &[IngestFrame]) -> io::Result<()> {
        if frames.is_empty() {
            return Ok(());
        }
        if self.bufs.len() < frames.len() {
            self.bufs.resize_with(frames.len(), Vec::new);
        }
        for (f, buf) in frames.iter().zip(self.bufs.iter_mut()) {
            Self::check_frame(f)?;
            buf.clear();
            f.encode_into(buf);
        }
        write_all_vectored(&mut self.stream, &self.bufs[..frames.len()])
    }

    /// Flush the underlying stream.
    pub fn flush(&mut self) -> io::Result<()> {
        self.stream.flush()
    }

    /// Bound how long [`recv_nack`](Self::recv_nack) blocks (`None`
    /// blocks indefinitely — the connected-socket default).
    pub fn set_read_timeout(&self, dur: Option<std::time::Duration>) -> io::Result<()> {
        self.stream.set_read_timeout(dur)
    }

    /// Read one server→producer control frame: the server NACKs every
    /// frame its generation check rejects, so a producer that polls
    /// this after sending learns *immediately* that its
    /// [`JobHandle`](crate::runtime::JobHandle) went stale instead of
    /// feeding a dead slot forever. `Ok(None)` means the server closed
    /// the connection; with a read timeout set, an idle wire surfaces
    /// as `WouldBlock`/`TimedOut`. NACKs are best-effort server-side —
    /// absence of one proves nothing, arrival of one is definitive.
    pub fn recv_nack(&mut self) -> io::Result<Option<NackFrame>> {
        read_nack(&mut self.stream)
    }
}

/// Write every buffer in `bufs`, gathering as many as possible into
/// each `writev` syscall. Short writes (rare on a blocking socket —
/// signals, tiny socket buffers) restart past the bytes already sent
/// by rebuilding the slice table from the current offset; the rebuild
/// is O(frames) and only paid on the short-write path.
fn write_all_vectored(stream: &mut impl Write, bufs: &[Vec<u8>]) -> io::Result<()> {
    let total: usize = bufs.iter().map(|b| b.len()).sum();
    let mut written = 0usize;
    while written < total {
        let mut slices: Vec<io::IoSlice<'_>> = Vec::with_capacity(bufs.len());
        let mut skip = written;
        for b in bufs {
            if skip >= b.len() {
                skip -= b.len();
                continue;
            }
            slices.push(io::IoSlice::new(&b[skip..]));
            skip = 0;
        }
        match stream.write_vectored(&slices) {
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::WriteZero,
                    "socket accepted zero bytes of a frame burst",
                ))
            }
            Ok(n) => written += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use cameo_core::time::LogicalTime;
    use cameo_dataflow::event::Tuple;

    fn frame(n: usize) -> IngestFrame {
        IngestFrame {
            job: 3,
            gen: 11,
            source: 7,
            tuples: (0..n as u64)
                .map(|i| Tuple::new(i, i as i64 * 2, LogicalTime(1_000 + i)))
                .collect(),
        }
    }

    #[test]
    fn config_clamps_to_at_least_one_loop() {
        assert_eq!(IngestServerConfig::default().loops(), 1);
        assert_eq!(IngestServerConfig::new().with_loops(0).loops(), 1);
        assert_eq!(IngestServerConfig::new().with_loops(4).loops(), 4);
    }

    #[test]
    fn read_frame_streams_multiple() {
        let a = frame(2);
        let b = frame(4);
        let mut bytes = encode_frame(&a);
        bytes.extend_from_slice(&encode_frame(&b));
        let mut cursor = std::io::Cursor::new(bytes);
        assert_eq!(read_frame(&mut cursor).unwrap().unwrap(), a);
        assert_eq!(read_frame(&mut cursor).unwrap().unwrap(), b);
        assert!(read_frame(&mut cursor).unwrap().is_none(), "clean EOF");
    }

    #[test]
    fn oversized_frame_rejected() {
        let mut bytes = (MAX_FRAME + 1).to_be_bytes().to_vec();
        bytes.extend_from_slice(&[0u8; 16]);
        let mut cursor = std::io::Cursor::new(bytes);
        assert!(read_frame(&mut cursor).is_err());
    }

    #[test]
    fn client_rejects_oversized_frames_before_writing() {
        // The server would refuse the frame and drop the connection;
        // the client must error at the offending call instead of
        // silently poisoning the stream.
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let mut client = IngestClient::connect(listener.local_addr().unwrap()).unwrap();
        let too_big = IngestFrame {
            job: 0,
            gen: 0,
            source: 0,
            tuples: vec![Tuple::new(0, 0, LogicalTime(1)); (MAX_FRAME as usize / TUPLE_WIRE) + 1],
        };
        let err = client.send(&too_big).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
        let err = client.send_many(&[frame(1), too_big]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
        // An in-cap frame still goes through.
        client.send(&frame(3)).unwrap();
    }

    #[test]
    fn write_all_vectored_survives_short_writes() {
        /// A writer that accepts at most 3 bytes per call, forcing the
        /// slice-table rebuild on every iteration (including rebuilds
        /// that start mid-buffer).
        struct Trickle(Vec<u8>);
        impl std::io::Write for Trickle {
            fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
                let n = buf.len().min(3);
                self.0.extend_from_slice(&buf[..n]);
                Ok(n)
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let bufs = vec![
            b"hello".to_vec(),
            Vec::new(),
            b"writev".to_vec(),
            b"!".to_vec(),
        ];
        let mut sink = Trickle(Vec::new());
        write_all_vectored(&mut sink, &bufs).unwrap();
        assert_eq!(sink.0, b"hellowritev!");
    }

    #[test]
    fn send_many_round_trips_over_loopback() {
        // The vectored path must deliver byte-identical frames.
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let frames: Vec<IngestFrame> = (1..=5).map(frame).collect();
        let expect = frames.clone();
        let server = std::thread::spawn(move || {
            let (mut conn, _) = listener.accept().unwrap();
            let mut got = Vec::new();
            while let Some(f) = read_frame(&mut conn).unwrap() {
                got.push(f);
            }
            got
        });
        let mut client = IngestClient::connect(addr).unwrap();
        client.send_many(&frames).unwrap();
        // A second burst reuses the per-frame buffers.
        client.send_many(&frames[..2]).unwrap();
        drop(client);
        let got = server.join().unwrap();
        assert_eq!(got.len(), 7);
        assert_eq!(&got[..5], &expect[..]);
        assert_eq!(&got[5..], &expect[..2]);
    }
}
