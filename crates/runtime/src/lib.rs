//! # cameo-runtime
//!
//! The real-time actor runtime for Cameo: the Flare/Orleans role of the
//! paper's stack, rebuilt from scratch. A pool of worker threads drains
//! the Cameo scheduler under wall-clock time; operators run with actor
//! exclusivity (one message at a time), priorities come from the same
//! `cameo-core` context machinery the simulator uses, and events can be
//! ingested in-process or over TCP with length-prefixed framing.
//!
//! ```no_run
//! use cameo_runtime::prelude::*;
//! use cameo_dataflow::prelude::*;
//! use cameo_core::prelude::*;
//!
//! let rt = Runtime::start(RuntimeConfig::default().with_workers(4));
//! let spec = ipq1(1_000_000, Micros::from_millis(800));
//! let job = rt.deploy(&spec, &ExpandOptions::default()).expect("valid job graph");
//! rt.ingest(job, 0, vec![Tuple::new(1, 42, LogicalTime(0))]).expect("job is live");
//! let stats = rt.job_stats(job).expect("job is live");
//! println!("outputs so far: {}", stats.outputs);
//! rt.undeploy(job).expect("drain and retire");
//! rt.shutdown();
//! ```

#![deny(missing_docs)]

pub mod durability;
pub mod msg;
pub mod net;
pub mod runtime;
pub mod stats;

/// Everything most runtime users need.
pub mod prelude {
    pub use crate::durability::{
        DurabilityConfig, FsyncPolicy, RecoverError, RecoveryReport, SnapshotError, SpecRegistry,
    };
    pub use crate::msg::{FrameDecoder, RtMsg};
    pub use crate::net::{
        decode_payload, encode_frame, read_frame, IngestClient, IngestFrame, IngestServer,
        IngestServerConfig, LoopStats, NackFrame,
    };
    pub use crate::runtime::{
        DeployError, IngestOutcome, JobError, JobHandle, OutputEvent, OutputSubscription,
        RejectedFrame, Runtime, RuntimeConfig,
    };
    pub use crate::stats::{JobStats, JobStatsSnapshot};
}
