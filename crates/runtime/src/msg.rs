//! Runtime message envelope (the real-time twin of the simulator's
//! `SimMsg`).

use cameo_core::context::PriorityContext;
use cameo_dataflow::event::Batch;

/// Reply address: `(job index, instance index, sender out-edge)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SenderRef {
    pub job: u32,
    pub op: u32,
    pub edge: u32,
}

/// One scheduled message.
#[derive(Clone, Debug)]
pub struct RtMsg {
    pub channel: u32,
    pub batch: Batch,
    pub pc: PriorityContext,
    pub sender: Option<SenderRef>,
}
