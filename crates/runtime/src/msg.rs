//! Runtime message envelope (the real-time twin of the simulator's
//! `SimMsg`) plus the TCP wire format: frame encoding, one-shot payload
//! decoding, and the streaming [`FrameDecoder`] that the coalescing
//! ingest path ([`crate::net`]) runs over a reusable per-connection
//! buffer. Decoders are owned by whichever serve loop owns the
//! connection — under a sharded ingress plane
//! ([`IngestServerConfig::with_loops`](crate::net::IngestServerConfig::with_loops))
//! each loop decodes its own connections with no cross-loop sharing,
//! so nothing here needs synchronization.
//!
//! Framing follows the networking-guide conventions: a 4-byte
//! big-endian length prefix, then the payload — explicit bounds, no
//! partial-frame surprises, and a hard frame-size cap so a misbehaving
//! client cannot balloon memory.
//!
//! This is **wire format v2**: the payload header carries the slot
//! *generation* of the sender's [`JobHandle`](crate::runtime::JobHandle) alongside the slot index,
//! so the stale-handle guarantee extends across the wire — a frame that
//! races its job's undeploy (and the slot's reuse) is rejected and
//! counted by the server, never routed to the slot's new occupant. v1
//! (no `gen` field) is not spoken anymore; the format is a clean break,
//! and a v1 peer fails the frame-length consistency check rather than
//! being half-parsed.
//!
//! ```text
//! frame   := len:u32be payload
//! payload := job:u32le gen:u32le source:u32le count:u32le tuple*
//! tuple   := key:u64le value:i64le time:u64le
//! ```
//!
//! The server→producer direction carries **control frames**: today the
//! single [`NackFrame`], sent (best-effort) for every frame the
//! generation check rejects, so a producer holding a stale
//! [`JobHandle`](crate::runtime::JobHandle) finds out *immediately*
//! instead of silently feeding a dead job. Control frames use the same
//! length-prefixed outer framing with a magic first word:
//!
//! ```text
//! nack := len:u32be magic:u32le job:u32le gen:u32le expected_gen:u32le
//! ```

use cameo_core::context::PriorityContext;
use cameo_core::time::LogicalTime;
use cameo_dataflow::event::{Batch, Tuple};
use std::io::{self, Read};

/// Reply address: `(job index, instance index, sender out-edge)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SenderRef {
    /// Jobs-table slot of the sending job.
    pub job: u32,
    /// Instance index of the sending operator within the job.
    pub op: u32,
    /// The sender's out-edge ordinal (the profile the reply updates).
    pub edge: u32,
}

/// One scheduled message.
#[derive(Clone, Debug)]
pub struct RtMsg {
    /// Input channel at the target operator.
    pub channel: u32,
    /// The tuple batch being delivered.
    pub batch: Batch,
    /// The Cameo priority context the batch travels with.
    pub pc: PriorityContext,
    /// Reply address for the acknowledgement (Reply Context) path.
    pub sender: Option<SenderRef>,
    /// Generation of the jobs-table slot this message belongs to,
    /// stamped at submission. Workers compare it against the slot's
    /// current occupant before executing: a mismatch means the job was
    /// undeployed (and the slot possibly reused) while this message was
    /// in flight, and the message is dropped — a stale message must
    /// never run against another job's operators.
    pub gen: u32,
}

/// Maximum accepted frame, matching a generous batch of ~43k tuples.
pub const MAX_FRAME: u32 = 1 << 20;
/// Bytes per tuple on the wire (`key:u64 value:i64 time:u64`).
pub const TUPLE_WIRE: usize = 24;
/// Bytes of payload header (`job:u32 gen:u32 source:u32 count:u32`).
pub const HEADER_WIRE: usize = 16;

/// One decoded ingest frame.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct IngestFrame {
    /// Jobs-table slot of the target job (`JobHandle::slot()`).
    pub job: u32,
    /// Slot generation the sender holds a handle for
    /// ([`JobHandle::generation`](crate::runtime::JobHandle::generation)). The runtime accepts the frame only
    /// while this matches the slot's current occupant: a frame racing
    /// its job's undeploy — even one that also races the slot's *reuse*
    /// — is rejected and counted, never delivered to the new occupant.
    pub gen: u32,
    /// Source index within the job (taken modulo its ingest count).
    pub source: u32,
    /// The frame's tuples.
    pub tuples: Vec<Tuple>,
}

impl IngestFrame {
    /// A frame addressed by a live [`JobHandle`](crate::runtime::JobHandle): slot and generation
    /// are stamped from the handle, which is the only way a remote
    /// producer should mint frames.
    pub fn addressed(job: crate::runtime::JobHandle, source: u32, tuples: Vec<Tuple>) -> Self {
        IngestFrame {
            job: job.slot(),
            gen: job.generation(),
            source,
            tuples,
        }
    }

    /// Wire size of this frame including the length prefix.
    pub fn wire_len(&self) -> usize {
        4 + HEADER_WIRE + self.tuples.len() * TUPLE_WIRE
    }

    /// Append the encoded frame (length prefix included) to `buf`.
    /// Reusing one buffer across frames is how the client batches a
    /// whole burst into a single socket write.
    pub fn encode_into(&self, buf: &mut Vec<u8>) {
        let payload_len = HEADER_WIRE + self.tuples.len() * TUPLE_WIRE;
        buf.reserve(4 + payload_len);
        buf.extend_from_slice(&(payload_len as u32).to_be_bytes());
        buf.extend_from_slice(&self.job.to_le_bytes());
        buf.extend_from_slice(&self.gen.to_le_bytes());
        buf.extend_from_slice(&self.source.to_le_bytes());
        buf.extend_from_slice(&(self.tuples.len() as u32).to_le_bytes());
        for t in &self.tuples {
            buf.extend_from_slice(&t.key.to_le_bytes());
            buf.extend_from_slice(&t.value.to_le_bytes());
            buf.extend_from_slice(&t.time.0.to_le_bytes());
        }
    }

    /// Move the tuple vector into a dataflow [`Batch`] arriving at
    /// `now`, stamping ingestion time on tuples without an event time.
    pub fn into_batch(mut self, now: cameo_core::time::PhysicalTime) -> Batch {
        for t in self.tuples.iter_mut() {
            if t.time.0 == 0 {
                t.time = LogicalTime(now.0);
            }
        }
        Batch::new(self.tuples, now)
    }
}

/// Encode a frame (length prefix included).
pub fn encode_frame(frame: &IngestFrame) -> Vec<u8> {
    let mut buf = Vec::with_capacity(frame.wire_len());
    frame.encode_into(&mut buf);
    buf
}

/// Magic word opening a control-frame payload on the server→producer
/// direction (`"NACK"` read as a little-endian `u32`). Ingest payloads
/// start with a jobs-table slot index, which in practice stays far
/// below this, but the directions never share a decoder anyway: clients
/// only ever *read* control frames, servers only ever write them.
pub const NACK_MAGIC: u32 = u32::from_le_bytes(*b"NACK");

/// Payload bytes of a NACK control frame
/// (`magic:u32 job:u32 gen:u32 expected_gen:u32`).
pub const NACK_WIRE: usize = 16;

/// Server→producer rejection notice (wire format v2): the frame the
/// producer just sent carried a slot generation that no longer matches
/// the slot's occupant — its [`JobHandle`](crate::runtime::JobHandle)
/// went stale (the job was undeployed, the slot possibly redeployed).
/// Delivery is best-effort (a producer that never reads, or whose
/// socket is full, simply misses it; the server still counts the
/// rejection), but a producer that does read can stop wasting wire
/// bytes on a dead handle the moment the first NACK arrives.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NackFrame {
    /// Jobs-table slot the rejected frame addressed.
    pub job: u32,
    /// The stale generation the rejected frame carried.
    pub gen: u32,
    /// The slot's current generation (what a live handle would carry).
    pub expected_gen: u32,
}

impl NackFrame {
    /// Encode the control frame, length prefix included.
    pub fn encode(&self) -> [u8; 4 + NACK_WIRE] {
        let mut buf = [0u8; 4 + NACK_WIRE];
        buf[0..4].copy_from_slice(&(NACK_WIRE as u32).to_be_bytes());
        buf[4..8].copy_from_slice(&NACK_MAGIC.to_le_bytes());
        buf[8..12].copy_from_slice(&self.job.to_le_bytes());
        buf[12..16].copy_from_slice(&self.gen.to_le_bytes());
        buf[16..20].copy_from_slice(&self.expected_gen.to_le_bytes());
        buf
    }

    /// Decode a control payload (after the length prefix).
    pub fn decode_payload(payload: &[u8]) -> io::Result<NackFrame> {
        if payload.len() != NACK_WIRE {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "control payload of {} bytes, expected {NACK_WIRE}",
                    payload.len()
                ),
            ));
        }
        let magic = u32::from_le_bytes(payload[0..4].try_into().unwrap());
        if magic != NACK_MAGIC {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unknown control magic {magic:#x}"),
            ));
        }
        Ok(NackFrame {
            job: u32::from_le_bytes(payload[4..8].try_into().unwrap()),
            gen: u32::from_le_bytes(payload[8..12].try_into().unwrap()),
            expected_gen: u32::from_le_bytes(payload[12..16].try_into().unwrap()),
        })
    }
}

/// Read one control frame off the server→producer direction.
/// `Ok(None)` is a clean EOF at a frame boundary.
pub fn read_nack(stream: &mut impl Read) -> io::Result<Option<NackFrame>> {
    let mut len_buf = [0u8; 4];
    match stream.read_exact(&mut len_buf) {
        Ok(()) => {}
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    let len = u32::from_be_bytes(len_buf) as usize;
    if len != NACK_WIRE {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("control frame of {len} bytes, expected {NACK_WIRE}"),
        ));
    }
    let mut payload = [0u8; NACK_WIRE];
    stream.read_exact(&mut payload)?;
    NackFrame::decode_payload(&payload).map(Some)
}

/// Decode a payload (after the length prefix has been stripped).
pub fn decode_payload(payload: &[u8]) -> io::Result<IngestFrame> {
    if payload.len() < HEADER_WIRE {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "payload shorter than header",
        ));
    }
    let job = u32::from_le_bytes(payload[0..4].try_into().unwrap());
    let gen = u32::from_le_bytes(payload[4..8].try_into().unwrap());
    let source = u32::from_le_bytes(payload[8..12].try_into().unwrap());
    let count = u32::from_le_bytes(payload[12..16].try_into().unwrap()) as usize;
    let expect = HEADER_WIRE + count * TUPLE_WIRE;
    if payload.len() != expect {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("bad frame: {} bytes for {count} tuples", payload.len()),
        ));
    }
    let mut tuples = Vec::with_capacity(count);
    let mut off = HEADER_WIRE;
    for _ in 0..count {
        let key = u64::from_le_bytes(payload[off..off + 8].try_into().unwrap());
        let value = i64::from_le_bytes(payload[off + 8..off + 16].try_into().unwrap());
        let time = u64::from_le_bytes(payload[off + 16..off + 24].try_into().unwrap());
        tuples.push(Tuple::new(key, value, LogicalTime(time)));
        off += TUPLE_WIRE;
    }
    Ok(IngestFrame {
        job,
        gen,
        source,
        tuples,
    })
}

/// Default buffer size of a [`FrameDecoder`]: big enough that a burst
/// of typical frames (a few hundred bytes each) arrives in one read.
pub const DECODER_BUF: usize = 64 * 1024;

/// Initial buffer of an *adaptive* [`FrameDecoder`]
/// ([`FrameDecoder::adaptive`]): small enough that 10k mostly-idle
/// connections cost tens of megabytes, not gigabytes. A connection
/// whose reads saturate this doubles its way up to [`DECODER_BUF`], so
/// active connections still pull whole bursts per read.
pub const ADAPTIVE_BUF_INIT: usize = 2 * 1024;

/// Streaming frame decoder over a reusable per-connection buffer.
///
/// The pre-coalescing ingest loop called `read_exact` twice per frame
/// (length, then payload) and allocated a fresh payload `Vec` each
/// time, so every frame paid its own syscalls and its own allocation —
/// and, more importantly, its own trip into the scheduler. This
/// decoder instead issues **one `read` per loop iteration**, pulling
/// *everything the socket currently has* into a single buffer that
/// lives as long as the connection, then slices every complete frame
/// out of it. A frame split across reads is carried in the buffer
/// (compacted to the front, no reallocation) until the rest arrives; a
/// frame larger than the buffer grows it once to exactly that frame's
/// size, and the high-water mark is reused from then on.
///
/// The caller hands all frames decoded from one read to
/// [`Runtime::ingest_frames`](crate::runtime::Runtime::ingest_frames)
/// as a unit — that is what converts "N frames in one socket read"
/// into one per-shard batch publication downstream.
#[derive(Debug)]
pub struct FrameDecoder {
    /// The connection buffer. Valid bytes live in `start..end`; the
    /// vector's length is its capacity (it is grown, never shrunk, and
    /// only when a single frame exceeds it — or, for
    /// [`adaptive`](Self::adaptive) decoders, when a read saturates
    /// it).
    buf: Vec<u8>,
    start: usize,
    end: usize,
    /// Saturated reads double the buffer up to this bound; `0` for the
    /// fixed-size decoders (`new` / `with_capacity`).
    grow_to: usize,
}

impl Default for FrameDecoder {
    fn default() -> Self {
        Self::new()
    }
}

impl FrameDecoder {
    /// A decoder with the default [`DECODER_BUF`] buffer.
    pub fn new() -> Self {
        Self::with_capacity(DECODER_BUF)
    }

    /// A decoder with a caller-chosen initial buffer size (it still
    /// grows on demand when one frame exceeds it; tests use tiny
    /// capacities to exercise that path).
    pub fn with_capacity(cap: usize) -> Self {
        FrameDecoder {
            buf: vec![0u8; cap.max(8)],
            start: 0,
            end: 0,
            grow_to: 0,
        }
    }

    /// A decoder for event-loop connections: starts at
    /// [`ADAPTIVE_BUF_INIT`] and **doubles after every saturated read**
    /// (a read that filled all spare buffer — the socket clearly had
    /// more) up to [`DECODER_BUF`]. Ten thousand idle connections stay
    /// at the small footprint; the busy ones quickly regain the
    /// whole-burst-per-read coalescing of a full-size buffer.
    pub fn adaptive() -> Self {
        FrameDecoder {
            buf: vec![0u8; ADAPTIVE_BUF_INIT],
            start: 0,
            end: 0,
            grow_to: DECODER_BUF,
        }
    }

    /// Bytes buffered but not yet decoded (a partial frame, between
    /// reads).
    pub fn buffered(&self) -> usize {
        self.end - self.start
    }

    /// Current buffer size (grows only when one frame needs more).
    pub fn capacity(&self) -> usize {
        self.buf.len()
    }

    /// Issue **one** `read` against `r`, appending to the connection
    /// buffer. Returns the byte count from the read (`0` means EOF —
    /// clean only if [`buffered`](Self::buffered) is also zero).
    /// `WouldBlock`/`TimedOut` errors pass through untouched so callers
    /// can poll a stop flag.
    ///
    /// Before reading, the buffered partial frame (if any) is compacted
    /// to the front of the buffer; if its length prefix promises a
    /// frame bigger than the whole buffer, the buffer grows once to
    /// exactly that frame's wire size (bounded by [`MAX_FRAME`], which
    /// is validated here so a hostile length prefix errors before any
    /// allocation).
    pub fn fill(&mut self, r: &mut impl Read) -> io::Result<usize> {
        // Compact: move the partial frame to the front. This is a plain
        // memmove within the existing buffer — never a reallocation.
        if self.start > 0 {
            self.buf.copy_within(self.start..self.end, 0);
            self.end -= self.start;
            self.start = 0;
        }
        // If the pending frame's size is already known, make sure the
        // whole frame can fit; grow to exactly its wire size if not.
        if self.end >= 4 {
            let len = u32::from_be_bytes(self.buf[0..4].try_into().unwrap());
            if len > MAX_FRAME {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("frame of {len} bytes exceeds cap {MAX_FRAME}"),
                ));
            }
            let need = 4 + len as usize;
            if need > self.buf.len() {
                self.buf.resize(need, 0);
            }
        }
        // In the fill→decode loop the spare is always nonzero (decoded
        // frames leave, partial frames get room above), but a direct
        // `fill` caller who skipped decoding must not read into an
        // empty slice — `read` would return 0 and masquerade as EOF.
        if self.end == self.buf.len() {
            let grown = (self.buf.len() * 2).min(4 + MAX_FRAME as usize);
            self.buf.resize(grown.max(self.buf.len() + 8), 0);
        }
        let spare = self.buf.len() - self.end;
        let n = r.read(&mut self.buf[self.end..])?;
        self.end += n;
        // Adaptive sizing: a saturated read means the socket had more
        // than fit — double the buffer (bounded) so the next read pulls
        // a bigger slice of the burst. Fixed-size decoders (grow_to ==
        // 0) never take this path.
        if n == spare && self.buf.len() < self.grow_to {
            let grown = (self.buf.len() * 2).min(self.grow_to);
            self.buf.resize(grown, 0);
        }
        Ok(n)
    }

    /// Decode every complete frame currently buffered, appending to
    /// `out`; returns how many were decoded. Bytes of a trailing
    /// partial frame stay buffered for the next [`fill`](Self::fill).
    ///
    /// There is no resynchronization: the protocol has no frame marker,
    /// so a corrupt length prefix or payload poisons the stream and the
    /// error is final (callers drop the connection).
    pub fn decode_available(&mut self, out: &mut Vec<IngestFrame>) -> io::Result<usize> {
        let mut decoded = 0usize;
        while self.buffered() >= 4 {
            let len = u32::from_be_bytes(self.buf[self.start..self.start + 4].try_into().unwrap());
            if len > MAX_FRAME {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("frame of {len} bytes exceeds cap {MAX_FRAME}"),
                ));
            }
            let total = 4 + len as usize;
            if self.buffered() < total {
                break;
            }
            out.push(decode_payload(
                &self.buf[self.start + 4..self.start + total],
            )?);
            self.start += total;
            decoded += 1;
        }
        if self.start == self.end {
            self.start = 0;
            self.end = 0;
        }
        Ok(decoded)
    }

    /// One coalescing step: a single read, then decode everything it
    /// completed. `Ok(None)` is EOF; clean when it falls on a frame
    /// boundary, an `UnexpectedEof` error when it truncates a frame.
    pub fn read_frames(
        &mut self,
        r: &mut impl Read,
        out: &mut Vec<IngestFrame>,
    ) -> io::Result<Option<usize>> {
        if self.fill(r)? == 0 {
            if self.buffered() > 0 {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    format!("EOF inside a frame ({} bytes buffered)", self.buffered()),
                ));
            }
            return Ok(None);
        }
        self.decode_available(out).map(Some)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame(n: usize) -> IngestFrame {
        IngestFrame {
            job: 3,
            gen: 11,
            source: 7,
            tuples: (0..n as u64)
                .map(|i| Tuple::new(i, i as i64 * 2, LogicalTime(1_000 + i)))
                .collect(),
        }
    }

    /// A reader that serves at most `chunk` bytes per `read` call —
    /// simulates a socket delivering data in arbitrary slices.
    struct Chunked {
        bytes: Vec<u8>,
        pos: usize,
        chunk: usize,
    }

    impl Read for Chunked {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            let n = (self.bytes.len() - self.pos).min(self.chunk).min(buf.len());
            buf[..n].copy_from_slice(&self.bytes[self.pos..self.pos + n]);
            self.pos += n;
            Ok(n)
        }
    }

    fn decode_all(bytes: Vec<u8>, chunk: usize, cap: usize) -> io::Result<Vec<IngestFrame>> {
        let mut r = Chunked {
            bytes,
            pos: 0,
            chunk,
        };
        let mut dec = FrameDecoder::with_capacity(cap);
        let mut out = Vec::new();
        while dec.read_frames(&mut r, &mut out)?.is_some() {}
        Ok(out)
    }

    #[test]
    fn frame_roundtrip() {
        let f = frame(5);
        let bytes = encode_frame(&f);
        assert_eq!(bytes.len(), f.wire_len());
        let decoded = decode_payload(&bytes[4..]).unwrap();
        assert_eq!(decoded, f);
    }

    #[test]
    fn zero_tuple_frame_roundtrips_through_decoder() {
        let f = frame(0);
        let bytes = encode_frame(&f);
        assert_eq!(decode_payload(&bytes[4..]).unwrap(), f);
        // And through the streaming path, mixed with non-empty frames.
        let mut stream = encode_frame(&frame(2));
        stream.extend_from_slice(&bytes);
        stream.extend_from_slice(&encode_frame(&frame(3)));
        let got = decode_all(stream, usize::MAX, DECODER_BUF).unwrap();
        assert_eq!(got, vec![frame(2), frame(0), frame(3)]);
    }

    #[test]
    fn truncated_payload_rejected() {
        let f = frame(3);
        let bytes = encode_frame(&f);
        assert!(decode_payload(&bytes[4..bytes.len() - 1]).is_err());
        assert!(decode_payload(&bytes[4..10]).is_err());
    }

    #[test]
    fn corrupt_count_rejected() {
        let f = frame(2);
        let mut bytes = encode_frame(&f);
        // Claim 100 tuples in the header.
        bytes[4 + 12..4 + 16].copy_from_slice(&100u32.to_le_bytes());
        assert!(decode_payload(&bytes[4..]).is_err());
    }

    #[test]
    fn v1_style_frame_without_gen_is_rejected() {
        // A v1 peer's header lacks the gen word, so its payload is 4
        // bytes short of what its own count field promises under v2 —
        // the length consistency check refuses it instead of shifting
        // every later field by one word.
        let f = frame(2);
        let v2 = encode_frame(&f);
        let mut v1 = Vec::new();
        let payload_len = (v2.len() - 4 - 4) as u32; // drop the gen word
        v1.extend_from_slice(&payload_len.to_be_bytes());
        v1.extend_from_slice(&v2[4..8]); // job
        v1.extend_from_slice(&v2[12..]); // source, count, tuples
        assert!(decode_payload(&v1[4..]).is_err());
    }

    #[test]
    fn one_read_yields_every_complete_frame() {
        let frames = [frame(2), frame(4), frame(1)];
        let mut bytes = Vec::new();
        for f in &frames {
            f.encode_into(&mut bytes);
        }
        let mut cursor = io::Cursor::new(bytes);
        let mut dec = FrameDecoder::new();
        let mut out = Vec::new();
        // The whole stream fits one buffer: a single read decodes all
        // three frames at once — the coalescing property itself.
        assert_eq!(dec.read_frames(&mut cursor, &mut out).unwrap(), Some(3));
        assert_eq!(out, frames);
        assert_eq!(dec.buffered(), 0);
        assert_eq!(dec.read_frames(&mut cursor, &mut out).unwrap(), None);
    }

    #[test]
    fn frame_split_across_reads_is_carried() {
        let frames = [frame(6), frame(2)];
        let mut bytes = Vec::new();
        for f in &frames {
            f.encode_into(&mut bytes);
        }
        // 7-byte reads: every frame arrives in many pieces, split at
        // every possible offset (headers included).
        let got = decode_all(bytes.clone(), 7, DECODER_BUF).unwrap();
        assert_eq!(got, frames);
        // Split exactly inside a length prefix.
        let got = decode_all(bytes, 2, DECODER_BUF).unwrap();
        assert_eq!(got, frames);
    }

    #[test]
    fn frame_larger_than_buffer_grows_it_once() {
        let big = frame(100); // 2416 wire bytes
        let small = frame(1);
        let mut bytes = encode_frame(&big);
        small.encode_into(&mut bytes);
        let mut r = Chunked {
            bytes,
            pos: 0,
            chunk: 9,
        };
        let mut dec = FrameDecoder::with_capacity(16);
        let mut out = Vec::new();
        while dec.read_frames(&mut r, &mut out).unwrap().is_some() {}
        assert_eq!(out, vec![big.clone(), small]);
        assert_eq!(
            dec.capacity(),
            big.wire_len(),
            "buffer grew to exactly the oversized frame"
        );
    }

    #[test]
    fn oversized_length_prefix_rejected_before_allocating() {
        let mut bytes = (MAX_FRAME + 1).to_be_bytes().to_vec();
        bytes.extend_from_slice(&[0u8; 16]);
        let err = decode_all(bytes, usize::MAX, 64).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn garbage_then_valid_stream_is_rejected() {
        // The framing has no sync marker, so garbage cannot be skipped:
        // the decoder must refuse the stream rather than misparse its
        // way into the (valid) frame behind the garbage.
        let mut bytes = vec![0xFFu8; 32]; // reads as len 0xFFFFFFFF
        bytes.extend_from_slice(&encode_frame(&frame(2)));
        assert!(decode_all(bytes, usize::MAX, DECODER_BUF).is_err());
        // Garbage that passes the length check but corrupts the payload
        // (tuple count inconsistent with the frame length) also errors.
        let mut plausible = 20u32.to_be_bytes().to_vec(); // 20-byte payload
        plausible.extend_from_slice(&[0xAB; 20]); // count field is huge
        plausible.extend_from_slice(&encode_frame(&frame(2)));
        assert!(decode_all(plausible, usize::MAX, DECODER_BUF).is_err());
    }

    #[test]
    fn eof_inside_a_frame_is_an_error() {
        let mut bytes = encode_frame(&frame(3));
        bytes.truncate(bytes.len() - 5);
        let err = decode_all(bytes, usize::MAX, DECODER_BUF).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn buffer_state_resets_between_bursts() {
        let mut dec = FrameDecoder::with_capacity(128);
        let mut out = Vec::new();
        for round in 0..5 {
            let f = frame(round % 3);
            let mut cursor = io::Cursor::new(encode_frame(&f));
            assert_eq!(dec.read_frames(&mut cursor, &mut out).unwrap(), Some(1));
            assert_eq!(dec.buffered(), 0, "no leftover bytes between bursts");
        }
        assert_eq!(out.len(), 5);
        assert_eq!(
            dec.capacity(),
            128,
            "sub-128-byte frames never grow a fixed 128-byte buffer"
        );
    }

    #[test]
    fn adaptive_decoder_doubles_on_saturated_reads_and_caps() {
        // A stream far bigger than the initial buffer: every read
        // saturates, so the buffer doubles its way to DECODER_BUF and
        // stops there.
        let mut bytes = Vec::new();
        let mut expect = 0usize;
        while bytes.len() < 3 * DECODER_BUF {
            frame(40).encode_into(&mut bytes);
            expect += 1;
        }
        let mut r = Chunked {
            bytes,
            pos: 0,
            chunk: usize::MAX,
        };
        let mut dec = FrameDecoder::adaptive();
        assert_eq!(dec.capacity(), ADAPTIVE_BUF_INIT);
        let mut out = Vec::new();
        while dec.read_frames(&mut r, &mut out).unwrap().is_some() {}
        assert_eq!(out.len(), expect);
        assert_eq!(
            dec.capacity(),
            DECODER_BUF,
            "saturated reads grow exactly to the cap"
        );

        // A trickle never saturates: the buffer stays at the cap it
        // reached (growth is one-way, driven by demand only).
        let mut slow = Chunked {
            bytes: encode_frame(&frame(1)),
            pos: 0,
            chunk: 5,
        };
        while dec.read_frames(&mut slow, &mut out).unwrap().is_some() {}
        assert_eq!(dec.capacity(), DECODER_BUF);
    }

    #[test]
    fn adaptive_decoder_stays_small_when_idle() {
        // One small frame per read — the 10k-idle-connections case.
        let mut dec = FrameDecoder::adaptive();
        let mut out = Vec::new();
        for _ in 0..50 {
            let mut cursor = io::Cursor::new(encode_frame(&frame(2)));
            dec.read_frames(&mut cursor, &mut out).unwrap();
        }
        assert_eq!(
            dec.capacity(),
            ADAPTIVE_BUF_INIT,
            "unsaturated reads never grow the buffer"
        );
    }

    #[test]
    fn nack_round_trips() {
        let nack = NackFrame {
            job: 7,
            gen: 3,
            expected_gen: 4,
        };
        let wire = nack.encode();
        assert_eq!(wire.len(), 4 + NACK_WIRE);
        assert_eq!(
            u32::from_be_bytes(wire[0..4].try_into().unwrap()),
            NACK_WIRE as u32
        );
        assert_eq!(NackFrame::decode_payload(&wire[4..]).unwrap(), nack);

        // The streaming reader sees frame, frame, clean EOF.
        let mut stream: Vec<u8> = Vec::new();
        stream.extend_from_slice(&wire);
        stream.extend_from_slice(
            &NackFrame {
                job: 1,
                gen: 9,
                expected_gen: 12,
            }
            .encode(),
        );
        let mut cursor = io::Cursor::new(stream);
        assert_eq!(read_nack(&mut cursor).unwrap(), Some(nack));
        assert_eq!(read_nack(&mut cursor).unwrap().unwrap().expected_gen, 12);
        assert_eq!(read_nack(&mut cursor).unwrap(), None);
    }

    #[test]
    fn nack_decode_rejects_bad_magic_and_bad_length() {
        let mut wire = NackFrame {
            job: 1,
            gen: 2,
            expected_gen: 3,
        }
        .encode();
        wire[4] ^= 0xFF; // corrupt the magic
        assert!(NackFrame::decode_payload(&wire[4..]).is_err());
        assert!(NackFrame::decode_payload(&[0u8; NACK_WIRE - 1]).is_err());
        // A length prefix that is not NACK_WIRE is not a control frame.
        let mut cursor = io::Cursor::new(vec![0, 0, 0, 5, 1, 2, 3, 4, 5]);
        assert!(read_nack(&mut cursor).is_err());
    }
}
