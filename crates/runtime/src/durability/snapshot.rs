//! Operator-state snapshots: a blob of every slot's state plus a tiny
//! manifest that makes the blob *visible* atomically.
//!
//! A snapshot is two files, written in a strict order:
//!
//! 1. `snap-{seq}.blob` — the full jobs-table image: every slot's
//!    generation (vacant slots too, so generation protection survives
//!    recovery), and for occupied slots the spec name plus every
//!    operator instance's serialized state. CRC-32 trailer over the
//!    whole body. Written and fsynced **first**.
//! 2. `manifest-{seq}.m` — seq, the journal offset the snapshot
//!    covers, the blob's length and checksum, and its own CRC. Written
//!    to a temp file, fsynced, then renamed into place — the rename is
//!    the commit point. A crash anywhere before it leaves the previous
//!    snapshot as the newest valid one.
//!
//! Recovery loads the highest-`seq` manifest whose own checksum, blob
//! length and blob checksum all verify; everything else is counted and
//! ignored. The runtime retains the latest **two** snapshots and
//! truncates the journal only below the *older* one, so even a torn
//! newest snapshot recovers — from the previous snapshot plus a longer
//! journal suffix.

use super::record::crc32;
use cameo_dataflow::codec::{self, Reader};
use std::fs::{self, File};
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};

const BLOB_MAGIC: &[u8; 4] = b"CSNP";
const MANIFEST_MAGIC: &[u8; 4] = b"CMAN";
const VERSION: u8 = 1;

/// One occupied slot's durable image.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JobSnapshot {
    /// Spec name, resolved against the
    /// [`SpecRegistry`](crate::durability::SpecRegistry) at recovery.
    pub name: String,
    /// Serialized state per operator instance, in instance order
    /// (see `OperatorInstance::state_snapshot`).
    pub instances: Vec<Vec<u8>>,
}

/// One jobs-table slot in a snapshot: its generation (always) and its
/// occupant (when occupied).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SlotSnapshot {
    /// The slot's generation at capture time.
    pub gen: u32,
    /// The occupant, if any.
    pub job: Option<JobSnapshot>,
}

/// A snapshot loaded back from disk.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LoadedSnapshot {
    /// The snapshot's sequence number.
    pub seq: u64,
    /// Journal offset the snapshot covers: replay starts here.
    pub journal_offset: u64,
    /// The captured jobs table.
    pub slots: Vec<SlotSnapshot>,
}

fn blob_path(dir: &Path, seq: u64) -> PathBuf {
    dir.join(format!("snap-{seq:016x}.blob"))
}

fn manifest_path(dir: &Path, seq: u64) -> PathBuf {
    dir.join(format!("manifest-{seq:016x}.m"))
}

fn manifest_seq(name: &str) -> Option<u64> {
    u64::from_str_radix(name.strip_prefix("manifest-")?.strip_suffix(".m")?, 16).ok()
}

fn encode_blob(seq: u64, journal_offset: u64, slots: &[SlotSnapshot]) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(BLOB_MAGIC);
    codec::put_u8(&mut out, VERSION);
    codec::put_u64(&mut out, seq);
    codec::put_u64(&mut out, journal_offset);
    codec::put_u32(&mut out, slots.len() as u32);
    for s in slots {
        codec::put_u32(&mut out, s.gen);
        match &s.job {
            None => codec::put_u8(&mut out, 0),
            Some(job) => {
                codec::put_u8(&mut out, 1);
                codec::put_str(&mut out, &job.name);
                codec::put_u32(&mut out, job.instances.len() as u32);
                for inst in &job.instances {
                    codec::put_u32(&mut out, inst.len() as u32);
                    out.extend_from_slice(inst);
                }
            }
        }
    }
    let crc = crc32(&out);
    out.extend_from_slice(&crc.to_le_bytes());
    out
}

fn decode_blob(bytes: &[u8], expect_seq: u64) -> Option<LoadedSnapshot> {
    if bytes.len() < 4 + 4 || &bytes[..4] != BLOB_MAGIC {
        return None;
    }
    let (body, trailer) = bytes.split_at(bytes.len() - 4);
    if crc32(body) != u32::from_le_bytes(trailer.try_into().ok()?) {
        return None;
    }
    let mut r = Reader::new(&body[4..]);
    if r.u8()? != VERSION {
        return None;
    }
    let seq = r.u64()?;
    if seq != expect_seq {
        return None;
    }
    let journal_offset = r.u64()?;
    let nslots = r.u32()?;
    let mut slots = Vec::with_capacity(nslots.min(65_536) as usize);
    for _ in 0..nslots {
        let gen = r.u32()?;
        let job = match r.u8()? {
            0 => None,
            1 => {
                let name = r.str()?;
                let ninst = r.u32()?;
                let mut instances = Vec::with_capacity(ninst.min(65_536) as usize);
                for _ in 0..ninst {
                    let len = r.u32()? as usize;
                    instances.push(r.bytes(len)?.to_vec());
                }
                Some(JobSnapshot { name, instances })
            }
            _ => return None,
        };
        slots.push(SlotSnapshot { gen, job });
    }
    if !r.is_empty() {
        return None;
    }
    Some(LoadedSnapshot {
        seq,
        journal_offset,
        slots,
    })
}

/// Write snapshot `seq` covering `journal_offset`: blob first (fsynced),
/// then the manifest via write-temp → fsync → rename.
pub fn write_snapshot(
    dir: &Path,
    seq: u64,
    journal_offset: u64,
    slots: &[SlotSnapshot],
) -> io::Result<()> {
    fs::create_dir_all(dir)?;
    let blob = encode_blob(seq, journal_offset, slots);
    {
        let mut f = File::create(blob_path(dir, seq))?;
        f.write_all(&blob)?;
        f.sync_all()?;
    }
    let mut m = Vec::new();
    m.extend_from_slice(MANIFEST_MAGIC);
    codec::put_u8(&mut m, VERSION);
    codec::put_u64(&mut m, seq);
    codec::put_u64(&mut m, journal_offset);
    codec::put_u64(&mut m, blob.len() as u64);
    codec::put_u32(&mut m, crc32(&blob));
    let crc = crc32(&m);
    m.extend_from_slice(&crc.to_le_bytes());
    let tmp = dir.join(format!("manifest-{seq:016x}.tmp"));
    {
        let mut f = File::create(&tmp)?;
        f.write_all(&m)?;
        f.sync_all()?;
    }
    fs::rename(&tmp, manifest_path(dir, seq))?;
    // Persist the rename itself (directory entry).
    if let Ok(d) = File::open(dir) {
        let _ = d.sync_all();
    }
    Ok(())
}

/// Parse and verify one manifest; on success load and verify its blob.
fn load_one(dir: &Path, seq: u64) -> Option<LoadedSnapshot> {
    let mut bytes = Vec::new();
    File::open(manifest_path(dir, seq))
        .ok()?
        .read_to_end(&mut bytes)
        .ok()?;
    if bytes.len() < 4 + 4 || &bytes[..4] != MANIFEST_MAGIC {
        return None;
    }
    let (body, trailer) = bytes.split_at(bytes.len() - 4);
    if crc32(body) != u32::from_le_bytes(trailer.try_into().ok()?) {
        return None;
    }
    let mut r = Reader::new(&body[4..]);
    if r.u8()? != VERSION {
        return None;
    }
    if r.u64()? != seq {
        return None;
    }
    let journal_offset = r.u64()?;
    let blob_len = r.u64()?;
    let blob_crc = r.u32()?;
    if !r.is_empty() {
        return None;
    }
    let mut blob = Vec::new();
    File::open(blob_path(dir, seq))
        .ok()?
        .read_to_end(&mut blob)
        .ok()?;
    if blob.len() as u64 != blob_len || crc32(&blob) != blob_crc {
        return None;
    }
    let loaded = decode_blob(&blob, seq)?;
    if loaded.journal_offset != journal_offset {
        return None;
    }
    Some(loaded)
}

/// Every valid snapshot in `dir`, ascending by `seq`, plus the count of
/// manifests that failed verification (torn, corrupt, version-skewed).
pub fn load_all(dir: &Path) -> io::Result<(Vec<LoadedSnapshot>, usize)> {
    let mut seqs = Vec::new();
    match fs::read_dir(dir) {
        Ok(entries) => {
            for entry in entries {
                let entry = entry?;
                if let Some(seq) = entry.file_name().to_str().and_then(manifest_seq) {
                    seqs.push(seq);
                }
            }
        }
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok((Vec::new(), 0)),
        Err(e) => return Err(e),
    }
    seqs.sort_unstable();
    let mut rejected = 0;
    let mut loaded = Vec::new();
    for seq in seqs {
        match load_one(dir, seq) {
            Some(s) => loaded.push(s),
            None => rejected += 1,
        }
    }
    Ok((loaded, rejected))
}

/// Delete snapshot files (blob + manifest) whose seq is not in `keep`.
pub fn prune(dir: &Path, keep: &[u64]) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let seq = manifest_seq(name).or_else(|| {
            u64::from_str_radix(name.strip_prefix("snap-")?.strip_suffix(".blob")?, 16).ok()
        });
        if let Some(seq) = seq {
            if !keep.contains(&seq) {
                fs::remove_file(entry.path())?;
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs::OpenOptions;

    fn tmp_dir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!(
            "cameo-snap-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&d);
        d
    }

    fn sample_slots() -> Vec<SlotSnapshot> {
        vec![
            SlotSnapshot {
                gen: 2,
                job: Some(JobSnapshot {
                    name: "ipq1".into(),
                    instances: vec![vec![], vec![1, 2, 3], vec![0xFF; 40]],
                }),
            },
            // Vacant slot: its generation still matters (stale-handle
            // protection must survive recovery).
            SlotSnapshot { gen: 7, job: None },
        ]
    }

    #[test]
    fn write_then_load_roundtrips() {
        let dir = tmp_dir("roundtrip");
        write_snapshot(&dir, 1, 100, &sample_slots()).unwrap();
        write_snapshot(&dir, 2, 250, &sample_slots()).unwrap();
        let (all, rejected) = load_all(&dir).unwrap();
        assert_eq!(rejected, 0);
        assert_eq!(all.len(), 2);
        assert_eq!(all[0].seq, 1);
        assert_eq!(all[1].seq, 2);
        assert_eq!(all[1].journal_offset, 250);
        assert_eq!(all[1].slots, sample_slots());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_blob_rejects_manifest_and_falls_back() {
        let dir = tmp_dir("fallback");
        write_snapshot(&dir, 1, 100, &sample_slots()).unwrap();
        write_snapshot(&dir, 2, 250, &sample_slots()).unwrap();
        // Corrupt the newest blob: its manifest must be rejected and
        // the previous snapshot remains the newest valid one.
        let mut blob = fs::read(blob_path(&dir, 2)).unwrap();
        let mid = blob.len() / 2;
        blob[mid] ^= 0xFF;
        fs::write(blob_path(&dir, 2), &blob).unwrap();
        let (all, rejected) = load_all(&dir).unwrap();
        assert_eq!(rejected, 1);
        assert_eq!(all.len(), 1);
        assert_eq!(all[0].seq, 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_manifest_is_rejected() {
        let dir = tmp_dir("torn-manifest");
        write_snapshot(&dir, 3, 500, &sample_slots()).unwrap();
        let path = manifest_path(&dir, 3);
        let len = fs::metadata(&path).unwrap().len();
        OpenOptions::new()
            .write(true)
            .open(&path)
            .unwrap()
            .set_len(len - 2)
            .unwrap();
        let (all, rejected) = load_all(&dir).unwrap();
        assert!(all.is_empty());
        assert_eq!(rejected, 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_blob_rejects_manifest() {
        let dir = tmp_dir("missing-blob");
        write_snapshot(&dir, 4, 0, &sample_slots()).unwrap();
        fs::remove_file(blob_path(&dir, 4)).unwrap();
        let (all, rejected) = load_all(&dir).unwrap();
        assert!(all.is_empty());
        assert_eq!(rejected, 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn prune_keeps_only_requested_seqs() {
        let dir = tmp_dir("prune");
        for seq in 1..=4u64 {
            write_snapshot(&dir, seq, seq * 10, &sample_slots()).unwrap();
        }
        prune(&dir, &[3, 4]).unwrap();
        let (all, rejected) = load_all(&dir).unwrap();
        assert_eq!(rejected, 0);
        assert_eq!(all.iter().map(|s| s.seq).collect::<Vec<_>>(), vec![3, 4]);
        assert!(!blob_path(&dir, 1).exists());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn empty_dir_loads_nothing() {
        let dir = tmp_dir("empty-nonexistent");
        let (all, rejected) = load_all(&dir).unwrap();
        assert!(all.is_empty());
        assert_eq!(rejected, 0);
    }
}
