//! The journal's on-disk record format.
//!
//! Every record is framed exactly like a v2 wire frame — a big-endian
//! `u32` length prefix — plus a little-endian CRC-32 over the payload,
//! so a torn tail (partial final write after a crash) is detected by
//! either a short frame or a checksum mismatch and discarded:
//!
//! ```text
//! [len: u32 BE] [crc: u32 LE] [payload: len bytes]
//! payload = kind: u8, body…
//! ```
//!
//! Three record kinds cover the runtime's durable control and data
//! plane. `Deploy` and `Undeploy` are lifecycle records: replay applies
//! them through the normal slot-map paths so slot indices and
//! generations come back exactly as journaled. `Frames` is a *group
//! commit* — one record per `ingest_frames`/`ingest_batch` call,
//! holding every accepted frame of that call **post-stamping**: tuple
//! logical times and the batch progress are final at append time, so
//! replayed batches carry their original `LogicalTime`s and windowed
//! operators fire identically (the effectively-once argument).

use cameo_core::time::{LogicalTime, PhysicalTime};
use cameo_dataflow::codec::{self, Reader};
use cameo_dataflow::event::{Batch, Tuple};

/// Upper bound on one record's payload (64 MiB). A `Frames` record
/// holds at most one socket read's worth of frames, each itself bounded
/// by the wire `MAX_FRAME`; anything larger is corruption.
pub const MAX_RECORD: u32 = 1 << 26;

/// Bytes of framing overhead per record (length prefix + checksum).
pub const RECORD_HEADER: u64 = 8;

const CRC_TABLE: [u32; 256] = build_crc_table();

const fn build_crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

/// CRC-32 (IEEE 802.3) over `bytes` — the checksum guarding journal
/// payloads and snapshot blobs.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

/// One ingested frame inside a [`JournalRecord::Frames`] group: the
/// slot/generation it was admitted under, the source index the caller
/// passed, and the fully stamped batch contents.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FrameRecord {
    /// Jobs-table slot the frame was delivered to.
    pub slot: u32,
    /// Slot generation at admission (replay re-checks it).
    pub gen: u32,
    /// Source index as passed by the producer (replay applies the same
    /// `% ingests.len()` the live path does).
    pub source: u32,
    /// The batch's stream progress. Journaled explicitly because a
    /// punctuation batch carries progress with no tuples at all.
    pub progress: u64,
    /// The stamped tuples.
    pub tuples: Vec<Tuple>,
}

impl FrameRecord {
    /// Capture an admitted batch (post-stamping, pre-routing).
    pub fn from_batch(slot: u32, gen: u32, source: u32, batch: &Batch) -> Self {
        FrameRecord {
            slot,
            gen,
            source,
            progress: batch.progress.0,
            tuples: batch.tuples.clone(),
        }
    }

    /// Rebuild the batch for replay. Tuples and progress are original;
    /// the *arrival* stamp is the recovery-time clock, exactly as if
    /// the frame had just arrived (latency accounting restarts, stream
    /// semantics do not).
    pub fn into_batch(self, now: PhysicalTime) -> Batch {
        Batch::with_progress(self.tuples, LogicalTime(self.progress), now)
    }
}

/// One journal record. See the module docs for framing.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum JournalRecord {
    /// A job was installed into `slot` at `gen`; `name` keys the
    /// [`SpecRegistry`](crate::durability::SpecRegistry) at recovery.
    Deploy {
        /// Jobs-table slot the job occupies.
        slot: u32,
        /// Slot generation issued to the deployer.
        gen: u32,
        /// Spec name for re-expansion.
        name: String,
    },
    /// The occupant of `slot` at `gen` was undeployed (its slot's
    /// generation then advanced past `gen`).
    Undeploy {
        /// Jobs-table slot that was vacated.
        slot: u32,
        /// Generation the departing occupant held.
        gen: u32,
    },
    /// One ingress call's admitted frames, group-committed together.
    Frames(
        /// The admitted frames, in admission order.
        Vec<FrameRecord>,
    ),
}

const KIND_DEPLOY: u8 = 1;
const KIND_UNDEPLOY: u8 = 2;
const KIND_FRAMES: u8 = 3;

impl JournalRecord {
    /// Serialize the payload (kind byte + body; no framing).
    pub fn encode_payload(&self, out: &mut Vec<u8>) {
        match self {
            JournalRecord::Deploy { slot, gen, name } => {
                codec::put_u8(out, KIND_DEPLOY);
                codec::put_u32(out, *slot);
                codec::put_u32(out, *gen);
                codec::put_str(out, name);
            }
            JournalRecord::Undeploy { slot, gen } => {
                codec::put_u8(out, KIND_UNDEPLOY);
                codec::put_u32(out, *slot);
                codec::put_u32(out, *gen);
            }
            JournalRecord::Frames(frames) => {
                codec::put_u8(out, KIND_FRAMES);
                codec::put_u32(out, frames.len() as u32);
                for f in frames {
                    codec::put_u32(out, f.slot);
                    codec::put_u32(out, f.gen);
                    codec::put_u32(out, f.source);
                    codec::put_u64(out, f.progress);
                    codec::put_u32(out, f.tuples.len() as u32);
                    for t in &f.tuples {
                        codec::put_u64(out, t.key);
                        codec::put_i64(out, t.value);
                        codec::put_u64(out, t.time.0);
                    }
                }
            }
        }
    }

    /// Frame the record for the journal: length prefix, checksum,
    /// payload. Appended to `out`.
    pub fn encode_framed(&self, out: &mut Vec<u8>) {
        let mut payload = Vec::new();
        self.encode_payload(&mut payload);
        out.extend_from_slice(&(payload.len() as u32).to_be_bytes());
        out.extend_from_slice(&crc32(&payload).to_le_bytes());
        out.extend_from_slice(&payload);
    }

    /// Parse one payload (the bytes after the frame header). `None` on
    /// any malformation — an unknown kind, a short body, trailing junk.
    pub fn decode_payload(payload: &[u8]) -> Option<JournalRecord> {
        let mut r = Reader::new(payload);
        let rec = match r.u8()? {
            KIND_DEPLOY => JournalRecord::Deploy {
                slot: r.u32()?,
                gen: r.u32()?,
                name: r.str()?,
            },
            KIND_UNDEPLOY => JournalRecord::Undeploy {
                slot: r.u32()?,
                gen: r.u32()?,
            },
            KIND_FRAMES => {
                let n = r.u32()?;
                let mut frames = Vec::with_capacity(n.min(4096) as usize);
                for _ in 0..n {
                    let (slot, gen, source) = (r.u32()?, r.u32()?, r.u32()?);
                    let progress = r.u64()?;
                    let ntuples = r.u32()?;
                    let mut tuples = Vec::with_capacity(ntuples.min(65536) as usize);
                    for _ in 0..ntuples {
                        let key = r.u64()?;
                        let value = r.i64()?;
                        let time = r.u64()?;
                        tuples.push(Tuple::new(key, value, LogicalTime(time)));
                    }
                    frames.push(FrameRecord {
                        slot,
                        gen,
                        source,
                        progress,
                        tuples,
                    });
                }
                JournalRecord::Frames(frames)
            }
            _ => return None,
        };
        if !r.is_empty() {
            return None;
        }
        Some(rec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_reference_vector() {
        // The classic IEEE check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    fn roundtrip(rec: &JournalRecord) {
        let mut framed = Vec::new();
        rec.encode_framed(&mut framed);
        let len = u32::from_be_bytes(framed[0..4].try_into().unwrap()) as usize;
        let crc = u32::from_le_bytes(framed[4..8].try_into().unwrap());
        let payload = &framed[8..];
        assert_eq!(payload.len(), len);
        assert_eq!(crc32(payload), crc);
        assert_eq!(JournalRecord::decode_payload(payload).as_ref(), Some(rec));
    }

    #[test]
    fn all_kinds_roundtrip() {
        roundtrip(&JournalRecord::Deploy {
            slot: 3,
            gen: 7,
            name: "ipq1".into(),
        });
        roundtrip(&JournalRecord::Undeploy { slot: 3, gen: 7 });
        roundtrip(&JournalRecord::Frames(vec![
            FrameRecord {
                slot: 0,
                gen: 0,
                source: 2,
                progress: 99,
                tuples: vec![
                    Tuple::new(1, -5, LogicalTime(10)),
                    Tuple::new(2, 6, LogicalTime(11)),
                ],
            },
            // A punctuation frame: progress with no tuples.
            FrameRecord {
                slot: 1,
                gen: 4,
                source: 0,
                progress: 1_000,
                tuples: vec![],
            },
        ]));
    }

    #[test]
    fn corrupt_payload_is_rejected() {
        let rec = JournalRecord::Undeploy { slot: 1, gen: 2 };
        let mut payload = Vec::new();
        rec.encode_payload(&mut payload);
        // Truncated, unknown kind, trailing byte: all rejected.
        assert!(JournalRecord::decode_payload(&payload[..payload.len() - 1]).is_none());
        let mut bad_kind = payload.clone();
        bad_kind[0] = 99;
        assert!(JournalRecord::decode_payload(&bad_kind).is_none());
        let mut trailing = payload.clone();
        trailing.push(0);
        assert!(JournalRecord::decode_payload(&trailing).is_none());
    }

    #[test]
    fn frame_record_replay_keeps_logical_times() {
        let b = Batch::with_progress(
            vec![Tuple::new(9, 1, LogicalTime(42))],
            LogicalTime(50),
            PhysicalTime(7),
        );
        let rec = FrameRecord::from_batch(2, 3, 1, &b);
        let replayed = rec.into_batch(PhysicalTime(9_999));
        assert_eq!(replayed.tuples, b.tuples);
        assert_eq!(replayed.progress, b.progress);
        assert_eq!(replayed.time, PhysicalTime(9_999), "arrival restamps");
    }
}
