//! Crash durability for the runtime: an append-only event journal,
//! periodic operator-state snapshots, and replay-to-consistent-cut
//! recovery.
//!
//! ## The three layers
//!
//! **Journal** ([`journal`]): every accepted ingress call appends one
//! group-committed [`record::JournalRecord`] *before* its messages are
//! published to the scheduler (write-ahead), and deploy/undeploy append
//! lifecycle records so the generational slot map replays exactly.
//! Fsync cadence is configurable ([`FsyncPolicy`]).
//!
//! **Snapshots** ([`snapshot`]): at quiescent points (scheduler empty,
//! no in-flight messages — verified while *holding the journal lock*,
//! so no record can land under the captured offset unprocessed), the
//! runtime serializes every operator instance's state
//! (`StateSnapshot`) into a checksummed blob plus an atomically
//! renamed manifest recording the journal offset the snapshot covers.
//! The latest two snapshots are retained; journal segments wholly
//! below the *older* retained offset are deleted.
//!
//! **Recovery** (`Runtime::recover`): load the newest valid manifest
//! (torn or corrupt manifests/blobs are detected by checksum and
//! skipped), re-expand each journaled job from the caller's
//! [`SpecRegistry`] into its original slot and generation, restore
//! operator state, then replay the journal suffix through the normal
//! ingest path. Replay is idempotent against the snapshot (`Deploy`/
//! `Undeploy` records already reflected in the restored slot map are
//! skipped), giving an at-least-once floor and effectively-once output
//! for deterministic operators: replayed batches carry their original
//! `LogicalTime`s, so windows fire identically.

pub mod journal;
pub mod record;
pub mod snapshot;

pub use journal::{FsyncPolicy, Journal, ReplayStats};
pub use record::{FrameRecord, JournalRecord};
pub use snapshot::{JobSnapshot, LoadedSnapshot, SlotSnapshot};

use cameo_dataflow::expand::ExpandOptions;
use cameo_dataflow::graph::JobSpec;
use std::collections::HashMap;
use std::fmt;
use std::io;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

/// Durability knobs, passed via `RuntimeConfig::with_durability`.
#[derive(Clone, Debug)]
pub struct DurabilityConfig {
    /// Directory holding journal segments and snapshots.
    pub dir: PathBuf,
    /// When journal appends reach stable storage.
    pub fsync: FsyncPolicy,
    /// Target size of one journal segment file.
    pub segment_bytes: u64,
}

impl DurabilityConfig {
    /// Durability rooted at `dir` with the defaults: no fsync (page
    /// cache survives process crashes; power loss falls back to the
    /// checksummed-tail truncation) and 16 MiB segments.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        DurabilityConfig {
            dir: dir.into(),
            fsync: FsyncPolicy::Never,
            segment_bytes: 16 << 20,
        }
    }

    /// Builder: fsync policy.
    pub fn with_fsync(mut self, policy: FsyncPolicy) -> Self {
        self.fsync = policy;
        self
    }

    /// Builder: journal segment size.
    pub fn with_segment_bytes(mut self, bytes: u64) -> Self {
        self.segment_bytes = bytes;
        self
    }
}

/// Why a snapshot attempt failed.
#[derive(Debug)]
pub enum SnapshotError {
    /// The runtime was started without durability.
    Inactive,
    /// The runtime never quiesced within the wait budget (messages
    /// in flight or queued throughout).
    Busy,
    /// Filesystem failure writing the blob/manifest or pruning.
    Io(io::Error),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Inactive => write!(f, "durability is not configured"),
            SnapshotError::Busy => write!(f, "runtime did not quiesce within the wait budget"),
            SnapshotError::Io(e) => write!(f, "snapshot I/O failed: {e}"),
        }
    }
}

impl std::error::Error for SnapshotError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SnapshotError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for SnapshotError {
    fn from(e: io::Error) -> Self {
        SnapshotError::Io(e)
    }
}

/// Why recovery failed. Torn tails and corrupt snapshots are *not*
/// errors — they are expected crash artifacts, skipped and counted in
/// the [`RecoveryReport`]; these are the genuinely unrecoverable cases.
#[derive(Debug)]
pub enum RecoverError {
    /// The config passed to `Runtime::recover` has no durability.
    NotConfigured,
    /// Filesystem failure reading the journal or snapshots.
    Io(io::Error),
    /// A journaled or snapshotted job names a spec the caller's
    /// [`SpecRegistry`] does not provide.
    UnknownSpec(String),
    /// A registered spec failed to re-expand (the registry's spec
    /// diverged from the journaled deployment).
    Expand(cameo_dataflow::graph::GraphError),
    /// A snapshotted instance state did not fit the re-expanded job
    /// (spec shape changed between crash and recovery).
    StateMismatch {
        /// The job whose state failed to restore.
        job: String,
        /// The instance index within the job.
        instance: usize,
    },
}

impl fmt::Display for RecoverError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecoverError::NotConfigured => {
                write!(f, "recover requires a RuntimeConfig with durability")
            }
            RecoverError::Io(e) => write!(f, "recovery I/O failed: {e}"),
            RecoverError::UnknownSpec(name) => {
                write!(f, "journaled job {name:?} is not in the spec registry")
            }
            RecoverError::Expand(e) => write!(f, "re-expanding a journaled job failed: {e}"),
            RecoverError::StateMismatch { job, instance } => write!(
                f,
                "snapshot state for job {job:?} instance {instance} does not fit the spec"
            ),
        }
    }
}

impl std::error::Error for RecoverError {}

impl From<io::Error> for RecoverError {
    fn from(e: io::Error) -> Self {
        RecoverError::Io(e)
    }
}

/// What recovery found and did — inspect it to decide whether the
/// recovered state is acceptable (e.g. alert on torn bytes).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Sequence of the snapshot restored from (`None`: journal-only
    /// recovery from offset 0).
    pub snapshot_seq: Option<u64>,
    /// Jobs restored from the snapshot.
    pub snapshot_jobs: usize,
    /// Manifests rejected as torn/corrupt before a valid one was found.
    pub manifests_rejected: usize,
    /// Journal records replayed after the snapshot cut.
    pub records_replayed: usize,
    /// Ingested frames replayed (within `Frames` records).
    pub frames_replayed: usize,
    /// Journal bytes discarded as torn (crash mid-append).
    pub torn_bytes: u64,
    /// Replayed frames dropped because their job was since undeployed
    /// (generation mismatch during replay — expected when the journal
    /// suffix spans an undeploy).
    pub stale_frames: usize,
}

/// The specs recovery re-expands journaled jobs from, keyed by
/// [`JobSpec::name`]. Operator factories are code, not data — the
/// journal records *which* job was deployed (by name, slot and
/// generation); the registry supplies the *how* (the spec and its
/// expansion options, exactly as passed to `deploy`).
#[derive(Default)]
pub struct SpecRegistry {
    map: HashMap<String, (JobSpec, ExpandOptions)>,
}

impl SpecRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        SpecRegistry::default()
    }

    /// Register a spec (keyed by its name) with the expansion options
    /// it is deployed under. Re-registering a name replaces it.
    pub fn register(&mut self, spec: JobSpec, opts: ExpandOptions) -> &mut Self {
        self.map.insert(spec.name.clone(), (spec, opts));
        self
    }

    /// Look up a spec by name.
    pub fn get(&self, name: &str) -> Option<(&JobSpec, &ExpandOptions)> {
        self.map.get(name).map(|(s, o)| (s, o))
    }

    /// Number of registered specs.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

/// The runtime's live durability state: the open journal plus snapshot
/// bookkeeping. Lives inside the runtime's `Shared`.
pub(crate) struct DurState {
    pub(crate) journal: Journal,
    /// Journal offset covered by the newest snapshot (dirty-bytes
    /// sensor baseline).
    pub(crate) last_snapshot_offset: AtomicU64,
    /// Last snapshot sequence number issued.
    pub(crate) snapshot_seq: AtomicU64,
    /// False while recovery replays the journal, so replayed work is
    /// not re-journaled; true in normal operation.
    pub(crate) active: AtomicBool,
    /// `(seq, journal_offset)` of retained snapshots, oldest first (at
    /// most two). The journal is truncated below the oldest retained
    /// offset only.
    pub(crate) retained: Mutex<Vec<(u64, u64)>>,
}

impl DurState {
    pub(crate) fn open(cfg: &DurabilityConfig) -> io::Result<Self> {
        let (journal, _torn) = Journal::open(&cfg.dir, cfg.fsync, cfg.segment_bytes)?;
        Ok(DurState {
            journal,
            last_snapshot_offset: AtomicU64::new(0),
            snapshot_seq: AtomicU64::new(0),
            active: AtomicBool::new(true),
            retained: Mutex::new(Vec::new()),
        })
    }

    /// Journal bytes appended since the newest snapshot — the elastic
    /// controller's snapshot-scheduling sensor.
    pub(crate) fn dirty_bytes(&self) -> u64 {
        self.journal
            .offset()
            .saturating_sub(self.last_snapshot_offset.load(Ordering::Acquire))
    }

    /// True when appends should be journaled (false during replay).
    pub(crate) fn is_active(&self) -> bool {
        self.active.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cameo_core::time::Micros;
    use cameo_dataflow::queries::ipq1;

    #[test]
    fn registry_replaces_and_resolves_by_name() {
        let mut reg = SpecRegistry::new();
        assert!(reg.is_empty());
        let spec = ipq1(1_000, Micros::from_millis(100));
        let name = spec.name.clone();
        reg.register(spec, ExpandOptions::default());
        assert_eq!(reg.len(), 1);
        assert!(reg.get(&name).is_some());
        assert!(reg.get("nope").is_none());
    }
}
