//! The append-only event journal: segment files of framed
//! [`JournalRecord`]s, group-committed off the ingest path.
//!
//! ## Layout
//!
//! The journal is a directory of segment files named
//! `seg-{:016x}` by the **logical offset** of their first byte.
//! Logical offsets are cumulative bytes across all segments ever
//! written, so `offset` names a unique position in the record stream
//! forever — snapshots store the offset they cover and recovery replays
//! the suffix from there. Records never span segments: a record that
//! would overflow the configured segment size rolls to a fresh segment
//! first, so every segment starts at a record boundary.
//!
//! ## Durability policies
//!
//! [`FsyncPolicy`] decides when appends reach stable storage:
//! `PerBatch` fsyncs every append (strongest, slowest), `Interval`
//! fsyncs on the first append after each interval elapses (bounded
//! loss window), `Never` leaves flushing to the OS page cache (process
//! crashes lose nothing — the page cache survives — but power loss may
//! lose the unsynced tail; the checksum framing detects and truncates
//! whatever was torn).

use super::record::{JournalRecord, MAX_RECORD, RECORD_HEADER};
use std::fs::{self, File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// When journal appends are flushed to stable storage.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// Never fsync; rely on the OS page cache. Survives process
    /// crashes, may lose a tail on power loss.
    Never,
    /// Fsync after every append (every group commit).
    PerBatch,
    /// Fsync on the first append after each interval elapses.
    Interval(Duration),
}

/// Counters from scanning a journal on open/recovery.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ReplayStats {
    /// Complete, checksum-valid records read.
    pub records: usize,
    /// Bytes discarded from the tail (torn final write after a crash).
    pub torn_bytes: u64,
}

struct JournalInner {
    file: File,
    /// Logical offset of the current segment's first byte.
    seg_start: u64,
    /// Logical offset one past the last appended byte.
    offset: u64,
    last_sync: Instant,
    /// Appends since the last fsync (so `Interval` never syncs an
    /// already-clean file).
    dirty: bool,
}

/// The append-only journal. One per runtime; all appends serialize on
/// an internal mutex (the group-commit batching upstream means one
/// lock acquisition per socket read, not per message).
pub struct Journal {
    dir: PathBuf,
    policy: FsyncPolicy,
    segment_bytes: u64,
    inner: Mutex<JournalInner>,
    /// Mirror of `inner.offset` readable without the lock (the elastic
    /// observer samples dirty bytes every tick).
    offset_mirror: AtomicU64,
}

/// Exclusive access to the journal for one append (or a truncation).
/// Holding the guard across a quiescence check pins the journal: no
/// concurrent ingress can slip a record in under a captured offset.
pub struct JournalGuard<'a> {
    journal: &'a Journal,
    inner: MutexGuard<'a, JournalInner>,
}

fn segment_path(dir: &Path, start: u64) -> PathBuf {
    dir.join(format!("seg-{start:016x}"))
}

/// Parse a segment file name back to its start offset.
fn segment_start(name: &str) -> Option<u64> {
    u64::from_str_radix(name.strip_prefix("seg-")?, 16).ok()
}

/// Sorted `(start_offset, path)` of every segment in `dir`.
fn list_segments(dir: &Path) -> io::Result<Vec<(u64, PathBuf)>> {
    let mut segs = Vec::new();
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        if let Some(start) = entry.file_name().to_str().and_then(segment_start) {
            segs.push((start, entry.path()));
        }
    }
    segs.sort_unstable_by_key(|(s, _)| *s);
    Ok(segs)
}

/// Scan framed records in `buf`, returning the length of the valid
/// prefix and the number of whole records in it. Everything past the
/// valid prefix is torn (short frame, oversized length, bad checksum).
fn valid_prefix(buf: &[u8]) -> (usize, usize) {
    let mut pos = 0usize;
    let mut records = 0usize;
    loop {
        let Some(header) = buf.get(pos..pos + RECORD_HEADER as usize) else {
            return (pos, records);
        };
        let len = u32::from_be_bytes(header[0..4].try_into().unwrap());
        let crc = u32::from_le_bytes(header[4..8].try_into().unwrap());
        if len > MAX_RECORD {
            return (pos, records);
        }
        let body_start = pos + RECORD_HEADER as usize;
        let Some(payload) = buf.get(body_start..body_start + len as usize) else {
            return (pos, records);
        };
        if super::record::crc32(payload) != crc {
            return (pos, records);
        }
        pos = body_start + len as usize;
        records += 1;
    }
}

impl Journal {
    /// Open (or create) the journal in `dir`, repairing a torn tail on
    /// the newest segment. Returns the journal and the number of torn
    /// bytes truncated away.
    pub fn open(dir: &Path, policy: FsyncPolicy, segment_bytes: u64) -> io::Result<(Journal, u64)> {
        fs::create_dir_all(dir)?;
        let segs = list_segments(dir)?;
        let mut torn = 0u64;
        let (seg_start, offset) = match segs.last() {
            None => (0, 0),
            Some((start, path)) => {
                let mut bytes = Vec::new();
                File::open(path)?.read_to_end(&mut bytes)?;
                let (valid, _) = valid_prefix(&bytes);
                if valid < bytes.len() {
                    torn = (bytes.len() - valid) as u64;
                    let f = OpenOptions::new().write(true).open(path)?;
                    f.set_len(valid as u64)?;
                    f.sync_all()?;
                }
                (*start, start + valid as u64)
            }
        };
        let path = segment_path(dir, seg_start);
        let mut file = OpenOptions::new().create(true).append(true).open(&path)?;
        file.seek(SeekFrom::End(0))?;
        let journal = Journal {
            dir: dir.to_path_buf(),
            policy,
            segment_bytes: segment_bytes.max(RECORD_HEADER),
            inner: Mutex::new(JournalInner {
                file,
                seg_start,
                offset,
                last_sync: Instant::now(),
                dirty: false,
            }),
            offset_mirror: AtomicU64::new(offset),
        };
        Ok((journal, torn))
    }

    /// Lock the journal for an append (or to pin it across a
    /// quiescence check).
    pub fn begin(&self) -> JournalGuard<'_> {
        JournalGuard {
            journal: self,
            inner: self.inner.lock().unwrap_or_else(|p| p.into_inner()),
        }
    }

    /// Logical offset one past the last appended byte (lock-free).
    pub fn offset(&self) -> u64 {
        self.offset_mirror.load(Ordering::Acquire)
    }

    /// The directory this journal lives in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }
}

impl JournalGuard<'_> {
    /// Logical offset one past the last appended byte.
    pub fn offset(&self) -> u64 {
        self.inner.offset
    }

    /// Append one record, rolling to a fresh segment when the current
    /// one is full, then apply the fsync policy. Returns the record's
    /// *end* offset — once a snapshot covers offsets `< end`, this
    /// record no longer needs replay.
    pub fn append(&mut self, rec: &JournalRecord) -> io::Result<u64> {
        let mut framed = Vec::new();
        rec.encode_framed(&mut framed);
        let inner = &mut *self.inner;
        let seg_len = inner.offset - inner.seg_start;
        if seg_len > 0 && seg_len + framed.len() as u64 > self.journal.segment_bytes {
            // Seal the full segment (records must be stable before the
            // roll: a later truncate_before may delete it only because
            // a snapshot covers it) and start the next at the current
            // logical offset.
            inner.file.sync_all()?;
            let path = segment_path(&self.journal.dir, inner.offset);
            inner.file = OpenOptions::new().create(true).append(true).open(path)?;
            inner.seg_start = inner.offset;
            inner.dirty = false;
        }
        inner.file.write_all(&framed)?;
        inner.offset += framed.len() as u64;
        inner.dirty = true;
        match self.journal.policy {
            FsyncPolicy::Never => {}
            FsyncPolicy::PerBatch => {
                inner.file.sync_data()?;
                inner.dirty = false;
            }
            FsyncPolicy::Interval(every) => {
                if inner.dirty && inner.last_sync.elapsed() >= every {
                    inner.file.sync_data()?;
                    inner.last_sync = Instant::now();
                    inner.dirty = false;
                }
            }
        }
        self.journal
            .offset_mirror
            .store(inner.offset, Ordering::Release);
        Ok(inner.offset)
    }

    /// Delete every segment that lies entirely below `offset` (all its
    /// records are covered by a snapshot). The segment containing
    /// `offset` — and anything after — stays.
    pub fn truncate_before(&mut self, offset: u64) -> io::Result<usize> {
        let segs = list_segments(&self.journal.dir)?;
        let mut removed = 0;
        for window in segs.windows(2) {
            let (start, ref path) = window[0];
            let (next_start, _) = window[1];
            // The segment's records end where the next one starts.
            let _ = start;
            if next_start <= offset {
                fs::remove_file(path)?;
                removed += 1;
            }
        }
        Ok(removed)
    }
}

/// Read every record at logical offsets `>= from`, in order. Segments
/// below `from` are skipped; a mid-segment `from` (a snapshot taken
/// mid-segment) seeks within it. Corruption stops the scan: everything
/// after the first invalid record is counted as torn, never replayed.
pub fn read_records(dir: &Path, from: u64) -> io::Result<(Vec<(u64, JournalRecord)>, ReplayStats)> {
    let segs = list_segments(dir)?;
    let mut out = Vec::new();
    let mut stats = ReplayStats::default();
    for (i, (start, path)) in segs.iter().enumerate() {
        let end_hint = segs.get(i + 1).map(|(s, _)| *s);
        // Skip segments that end at or before `from`.
        if let Some(end) = end_hint {
            if end <= from {
                continue;
            }
        }
        let mut bytes = Vec::new();
        File::open(path)?.read_to_end(&mut bytes)?;
        if let Some(end) = end_hint {
            // A sealed segment's logical extent is fixed by its
            // successor; a longer file would replay offsets the
            // successor also claims.
            bytes.truncate((end - start) as usize);
        }
        let (valid, _) = valid_prefix(&bytes);
        if valid < bytes.len() {
            stats.torn_bytes += (bytes.len() - valid) as u64;
        }
        let mut pos = 0usize;
        while pos < valid {
            let len = u32::from_be_bytes(bytes[pos..pos + 4].try_into().unwrap()) as usize;
            let body = &bytes[pos + RECORD_HEADER as usize..pos + RECORD_HEADER as usize + len];
            let rec_end = start + (pos + RECORD_HEADER as usize + len) as u64;
            pos += RECORD_HEADER as usize + len;
            if rec_end <= from {
                continue;
            }
            match JournalRecord::decode_payload(body) {
                Some(rec) => {
                    stats.records += 1;
                    out.push((rec_end, rec));
                }
                // Checksum-valid but semantically unknown (e.g. a
                // future record kind): stop, like corruption.
                None => {
                    stats.torn_bytes += (valid - pos) as u64;
                    return Ok((out, stats));
                }
            }
        }
        if valid < bytes.len() {
            // Torn mid-stream: nothing after is reachable.
            break;
        }
    }
    Ok((out, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::durability::record::FrameRecord;

    fn tmp_dir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!(
            "cameo-journal-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&d);
        d
    }

    fn deploy(slot: u32, gen: u32) -> JournalRecord {
        JournalRecord::Deploy {
            slot,
            gen,
            name: format!("job-{slot}"),
        }
    }

    #[test]
    fn append_then_read_roundtrips_in_order() {
        let dir = tmp_dir("roundtrip");
        let (j, torn) = Journal::open(&dir, FsyncPolicy::Never, 1 << 20).unwrap();
        assert_eq!(torn, 0);
        let recs = vec![
            deploy(0, 0),
            JournalRecord::Frames(vec![FrameRecord {
                slot: 0,
                gen: 0,
                source: 0,
                progress: 5,
                tuples: vec![],
            }]),
            JournalRecord::Undeploy { slot: 0, gen: 0 },
        ];
        let mut g = j.begin();
        for r in &recs {
            g.append(r).unwrap();
        }
        drop(g);
        let (read, stats) = read_records(&dir, 0).unwrap();
        assert_eq!(stats.records, 3);
        assert_eq!(stats.torn_bytes, 0);
        let bodies: Vec<&JournalRecord> = read.iter().map(|(_, r)| r).collect();
        assert_eq!(bodies, recs.iter().collect::<Vec<_>>());
        // End offsets are strictly increasing and the last matches the
        // journal's own offset.
        assert!(read.windows(2).all(|w| w[0].0 < w[1].0));
        assert_eq!(read.last().unwrap().0, j.offset());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_is_truncated_on_open() {
        let dir = tmp_dir("torn");
        let (j, _) = Journal::open(&dir, FsyncPolicy::Never, 1 << 20).unwrap();
        j.begin().append(&deploy(1, 2)).unwrap();
        let full = j.offset();
        j.begin().append(&deploy(3, 4)).unwrap();
        drop(j);
        // Tear the second record: chop 3 bytes off the segment.
        let seg = segment_path(&dir, 0);
        let len = fs::metadata(&seg).unwrap().len();
        OpenOptions::new()
            .write(true)
            .open(&seg)
            .unwrap()
            .set_len(len - 3)
            .unwrap();
        let (j, torn) = Journal::open(&dir, FsyncPolicy::Never, 1 << 20).unwrap();
        assert!(torn > 0);
        assert_eq!(j.offset(), full, "reopen resumes at the valid prefix");
        let (read, stats) = read_records(&dir, 0).unwrap();
        assert_eq!(read.len(), 1);
        assert_eq!(read[0].1, deploy(1, 2));
        assert_eq!(stats.torn_bytes, 0, "open already repaired the tail");
        // Appends continue cleanly after the repair.
        j.begin().append(&deploy(5, 6)).unwrap();
        let (read, _) = read_records(&dir, 0).unwrap();
        assert_eq!(read.len(), 2);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupted_record_stops_replay_at_the_tear() {
        let dir = tmp_dir("corrupt");
        let (j, _) = Journal::open(&dir, FsyncPolicy::Never, 1 << 20).unwrap();
        j.begin().append(&deploy(1, 0)).unwrap();
        let first_end = j.offset();
        j.begin().append(&deploy(2, 0)).unwrap();
        j.begin().append(&deploy(3, 0)).unwrap();
        drop(j);
        // Flip a byte inside the second record's payload.
        let seg = segment_path(&dir, 0);
        let mut bytes = fs::read(&seg).unwrap();
        let idx = first_end as usize + RECORD_HEADER as usize + 1;
        bytes[idx] ^= 0xFF;
        fs::write(&seg, &bytes).unwrap();
        let (read, stats) = read_records(&dir, 0).unwrap();
        assert_eq!(read.len(), 1, "replay stops at the corrupt record");
        assert!(stats.torn_bytes > 0);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn segments_roll_and_truncate_before_deletes_covered_ones() {
        let dir = tmp_dir("segments");
        // Tiny segments: every record rolls.
        let (j, _) = Journal::open(&dir, FsyncPolicy::Never, 32).unwrap();
        let mut ends = Vec::new();
        for i in 0..5 {
            ends.push(j.begin().append(&deploy(i, 0)).unwrap());
        }
        assert!(list_segments(&dir).unwrap().len() >= 3, "rolls happened");
        let (read, _) = read_records(&dir, 0).unwrap();
        assert_eq!(read.len(), 5);
        // Suffix reads from a mid-journal offset skip covered records.
        let (suffix, _) = read_records(&dir, ends[2]).unwrap();
        assert_eq!(suffix.len(), 2);
        assert_eq!(suffix[0].1, deploy(3, 0));
        // Truncating below ends[2] removes only fully covered segments;
        // the suffix must still be fully readable.
        j.begin().truncate_before(ends[2]).unwrap();
        let (suffix, _) = read_records(&dir, ends[2]).unwrap();
        assert_eq!(suffix.len(), 2);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn interval_policy_syncs_lazily_perbatch_always() {
        let dir = tmp_dir("fsync");
        let (j, _) = Journal::open(
            &dir,
            FsyncPolicy::Interval(Duration::from_secs(3600)),
            1 << 20,
        )
        .unwrap();
        j.begin().append(&deploy(0, 0)).unwrap();
        drop(j);
        let (j, _) = Journal::open(&dir, FsyncPolicy::PerBatch, 1 << 20).unwrap();
        j.begin().append(&deploy(1, 0)).unwrap();
        let (read, _) = read_records(&dir, 0).unwrap();
        assert_eq!(read.len(), 2);
        fs::remove_dir_all(&dir).unwrap();
    }
}
