//! The real-time actor runtime: a worker pool draining the Cameo
//! scheduler under wall-clock time.
//!
//! This is the Flare/Orleans role in the paper's stack, rebuilt the way
//! the networking guides recommend for a CPU-scheduling executor: plain
//! worker *threads* (not an async runtime — operators are CPU-bound and
//! the scheduler itself decides interleaving), a condvar-parked shared
//! run queue, and actor exclusivity enforced by operator leases plus a
//! per-instance mutex (never contended in steady state, because the
//! scheduler leases an operator to one worker at a time).
//!
//! Lock ordering: a worker holds at most one instance lock at a time;
//! reply application locks the *sender* instance only after the
//! executing instance's guard is dropped. The run-queue mutex is never
//! held while an instance lock is held.

use crate::msg::{RtMsg, SenderRef};
use crate::stats::{JobStats, JobStatsSnapshot};
use cameo_core::config::SchedulerConfig;
use cameo_core::ids::JobId;
use cameo_core::policy::{LlfPolicy, MessageStamp, Policy};
use cameo_core::scheduler::{CameoScheduler, Decision, SchedulerStats};
use cameo_core::time::{Clock, Micros, PhysicalTime, SystemClock};
use cameo_dataflow::event::{Batch, Tuple};
use cameo_dataflow::expand::{route_batch, ExpandOptions, ExpandedJob, OperatorInstance};
use cameo_dataflow::graph::JobSpec;
use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::{Condvar, Mutex, RwLock};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// An output emitted by a job's sink operator.
#[derive(Clone, Debug)]
pub struct OutputEvent {
    pub job: JobHandle,
    pub batch: Batch,
    pub latency: Micros,
    pub at: PhysicalTime,
}

/// Identifies a deployed job.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct JobHandle(pub u32);

/// Runtime configuration.
pub struct RuntimeConfig {
    pub workers: usize,
    pub quantum: Micros,
    pub policy: Arc<dyn Policy>,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        RuntimeConfig {
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
            quantum: Micros::from_millis(1),
            policy: Arc::new(LlfPolicy),
        }
    }
}

impl RuntimeConfig {
    pub fn with_workers(mut self, n: usize) -> Self {
        assert!(n > 0);
        self.workers = n;
        self
    }

    pub fn with_quantum(mut self, q: Micros) -> Self {
        self.quantum = q;
        self
    }

    pub fn with_policy(mut self, p: Arc<dyn Policy>) -> Self {
        self.policy = p;
        self
    }
}

struct JobRt {
    instances: Vec<Mutex<OperatorInstance>>,
    ingests: Vec<usize>,
    latency_constraint: Micros,
    stats: Arc<JobStats>,
    subscribers: Mutex<Vec<Sender<OutputEvent>>>,
}

struct Shared {
    clock: SystemClock,
    queue: Mutex<CameoScheduler<RtMsg>>,
    cv: Condvar,
    jobs: RwLock<Vec<Arc<JobRt>>>,
    policy: Arc<dyn Policy>,
    shutdown: AtomicBool,
}

impl Shared {
    fn now(&self) -> PhysicalTime {
        self.clock.now()
    }

    fn submit(&self, key: cameo_core::ids::OperatorKey, msg: RtMsg) {
        let pri = msg.pc.priority;
        let newly_runnable = {
            let mut q = self.queue.lock();
            q.submit(key, msg, pri)
        };
        if newly_runnable {
            self.cv.notify_one();
        }
    }
}

/// The runtime: deploy jobs, ingest events, read output stats.
pub struct Runtime {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl Runtime {
    pub fn start(config: RuntimeConfig) -> Self {
        let shared = Arc::new(Shared {
            clock: SystemClock::new(),
            queue: Mutex::new(CameoScheduler::new(
                SchedulerConfig::default().with_quantum(config.quantum),
            )),
            cv: Condvar::new(),
            jobs: RwLock::new(Vec::new()),
            policy: config.policy.clone(),
            shutdown: AtomicBool::new(false),
        });
        let workers = (0..config.workers)
            .map(|i| {
                let sh = shared.clone();
                std::thread::Builder::new()
                    .name(format!("cameo-worker-{i}"))
                    .spawn(move || worker_loop(sh))
                    .expect("spawn worker thread")
            })
            .collect();
        Runtime { shared, workers }
    }

    /// Deploy a job; events may be ingested immediately afterwards.
    pub fn deploy(&self, spec: &JobSpec, opts: &ExpandOptions) -> JobHandle {
        let mut jobs = self.shared.jobs.write();
        let id = JobId(jobs.len() as u32);
        let exp = ExpandedJob::expand(spec, id, opts);
        let job = JobRt {
            ingests: exp.ingests.clone(),
            latency_constraint: exp.latency_constraint,
            stats: Arc::new(JobStats::new(exp.latency_constraint)),
            subscribers: Mutex::new(Vec::new()),
            instances: exp.instances.into_iter().map(Mutex::new).collect(),
        };
        jobs.push(Arc::new(job));
        JobHandle(id.0)
    }

    /// Subscribe to a job's sink outputs.
    pub fn subscribe(&self, job: JobHandle) -> Receiver<OutputEvent> {
        let (tx, rx) = unbounded();
        self.shared.jobs.read()[job.0 as usize]
            .subscribers
            .lock()
            .push(tx);
        rx
    }

    /// Ingest a batch of tuples at one of the job's sources. Tuples
    /// without meaningful event times may use `LogicalTime::ZERO`; the
    /// runtime stamps ingestion time in that case.
    pub fn ingest(&self, job: JobHandle, source: u32, mut tuples: Vec<Tuple>) {
        let now = self.shared.now();
        // Ingestion-time stamping for tuples without event time.
        for t in tuples.iter_mut() {
            if t.time.0 == 0 {
                t.time = cameo_core::time::LogicalTime(now.0);
            }
        }
        let batch = Batch::new(tuples, now);
        self.ingest_batch(job, source, batch);
    }

    /// Ingest a pre-stamped batch (arrival time is set to "now").
    pub fn ingest_batch(&self, job: JobHandle, source: u32, mut batch: Batch) {
        let now = self.shared.now();
        batch.time = now;
        let jobs = self.shared.jobs.read();
        let jrt = jobs[job.0 as usize].clone();
        drop(jobs);
        let ingest_idx = jrt.ingests[source as usize % jrt.ingests.len()];
        let stamp = MessageStamp {
            progress: batch.progress,
            time: batch.time,
        };
        let mut outbound = Vec::new();
        {
            let mut inst = jrt.instances[ingest_idx].lock();
            let jid = JobId(job.0);
            let constraint = jrt.latency_constraint;
            let inst = &mut *inst;
            let converter = &mut inst.converter;
            for route in &inst.outs {
                let pc = self
                    .shared
                    .policy
                    .build_at_source(jid, stamp, constraint, &route.hop, converter);
                for (target, channel, sub) in route_batch(route, &batch) {
                    outbound.push((
                        target,
                        RtMsg {
                            channel,
                            batch: sub,
                            pc,
                            sender: Some(SenderRef {
                                job: job.0,
                                op: ingest_idx as u32,
                                edge: route.edge,
                            }),
                        },
                    ));
                }
            }
        }
        for (target, msg) in outbound {
            let key = cameo_core::ids::OperatorKey::new(JobId(job.0), target as u32);
            self.shared.submit(key, msg);
        }
    }

    /// Latency statistics of a job's sink outputs.
    pub fn job_stats(&self, job: JobHandle) -> JobStatsSnapshot {
        self.shared.jobs.read()[job.0 as usize].stats.snapshot()
    }

    /// Scheduler counters.
    pub fn scheduler_stats(&self) -> SchedulerStats {
        self.shared.queue.lock().stats()
    }

    /// Pending message count.
    pub fn queue_len(&self) -> usize {
        self.shared.queue.lock().len()
    }

    /// Wait (bounded) for the queue to drain.
    pub fn drain(&self, timeout: std::time::Duration) -> bool {
        let deadline = std::time::Instant::now() + timeout;
        while std::time::Instant::now() < deadline {
            if self.queue_len() == 0 {
                return true;
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        self.queue_len() == 0
    }

    /// Stop all workers and join them. Pending messages are dropped.
    pub fn shutdown(mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.cv.notify_all();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for Runtime {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.cv.notify_all();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_loop(sh: Arc<Shared>) {
    loop {
        // Acquire the most urgent operator, parking when idle.
        let exec = {
            let mut q = sh.queue.lock();
            loop {
                if sh.shutdown.load(Ordering::Acquire) {
                    return;
                }
                if let Some(exec) = q.acquire(sh.now()) {
                    break exec;
                }
                sh.cv.wait(&mut q);
            }
        };
        // Drain the operator until the scheduler says stop.
        loop {
            let msg = {
                let mut q = sh.queue.lock();
                q.take_message(&exec)
            };
            let Some((msg, _pri)) = msg else {
                sh.queue.lock().release(exec);
                break;
            };
            process_message(&sh, exec.key(), msg);
            let decision = {
                let mut q = sh.queue.lock();
                q.decide(&exec, sh.now())
            };
            match decision {
                Decision::Continue => continue,
                Decision::Swap | Decision::Idle => {
                    sh.queue.lock().release(exec);
                    // The released operator may still be runnable (swap
                    // leaves messages behind); wake a parked sibling.
                    sh.cv.notify_one();
                    break;
                }
            }
        }
    }
}

/// Execute one message on its operator: run the UDF, record the cost,
/// acknowledge upstream, route outputs downstream.
fn process_message(sh: &Arc<Shared>, key: cameo_core::ids::OperatorKey, msg: RtMsg) {
    let jobs = sh.jobs.read();
    let jrt = jobs[key.job.0 as usize].clone();
    drop(jobs);
    let op_idx = key.op as usize;

    let mut outbound: Vec<(usize, RtMsg)> = Vec::new();
    let mut reply: Option<(SenderRef, cameo_core::context::ReplyContext)> = None;
    let mut outputs: Vec<Batch> = Vec::new();
    let is_sink;
    {
        let mut guard = jrt.instances[op_idx].lock();
        let inst = &mut *guard;
        is_sink = inst.is_sink;
        let started = sh.now();
        inst.op
            .as_mut()
            .expect("scheduled instance has an operator")
            .on_batch(msg.channel, &msg.batch, started, &mut outputs);
        inst.propagate_watermark(msg.channel, msg.batch.progress.0, &mut outputs);
        let cost = sh.now() - started;
        inst.converter.profile.record_own_cost(cost);
        if let Some(sender) = msg.sender {
            reply = Some((sender, sh.policy.prepare_reply(&inst.converter, inst.is_sink)));
        }
        if !inst.is_sink {
            let sender_op = op_idx as u32;
            let converter = &mut inst.converter;
            for route in &inst.outs {
                for b in &outputs {
                    let stamp = MessageStamp {
                        progress: b.progress,
                        time: b.time,
                    };
                    let pc = sh
                        .policy
                        .build_at_operator(&msg.pc, stamp, &route.hop, converter);
                    for (target, channel, sub) in route_batch(route, b) {
                        outbound.push((
                            target,
                            RtMsg {
                                channel,
                                batch: sub,
                                pc,
                                sender: Some(SenderRef {
                                    job: key.job.0,
                                    op: sender_op,
                                    edge: route.edge,
                                }),
                            },
                        ));
                    }
                }
            }
        }
    } // instance guard dropped before touching any other instance

    if is_sink {
        let now = sh.now();
        for b in &outputs {
            jrt.stats.record(now, b.time, b.len());
            let mut subs = jrt.subscribers.lock();
            subs.retain(|tx| {
                tx.send(OutputEvent {
                    job: JobHandle(key.job.0),
                    batch: b.clone(),
                    latency: now - b.time,
                    at: now,
                })
                .is_ok()
            });
        }
    }
    if let Some((sender, rc)) = reply {
        let sender_jrt = {
            let jobs = sh.jobs.read();
            jobs[sender.job as usize].clone()
        };
        let mut inst = sender_jrt.instances[sender.op as usize].lock();
        sh.policy.process_reply(&mut inst.converter, sender.edge, &rc);
    }
    for (target, m) in outbound {
        let tkey = cameo_core::ids::OperatorKey::new(key.job, target as u32);
        sh.submit(tkey, m);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cameo_core::time::LogicalTime;
    use cameo_dataflow::queries::AggQueryParams;

    fn tiny_query(name: &str, window: u64) -> JobSpec {
        cameo_dataflow::queries::agg_query(
            &AggQueryParams::new(name, window, Micros::from_millis(500))
                .with_sources(2)
                .with_parallelism(2)
                .with_domain(cameo_core::progress::TimeDomain::IngestionTime),
        )
    }

    #[test]
    fn deploy_ingest_and_collect_outputs() {
        let rt = Runtime::start(RuntimeConfig::default().with_workers(2));
        let job = rt.deploy(&tiny_query("t", 10_000), &ExpandOptions::default());
        let rx = rt.subscribe(job);
        // Two rounds per source: fill window [0,10ms) then cross it.
        for (source, base) in [(0u32, 0u64), (1, 0)] {
            let tuples = (0..50)
                .map(|i| Tuple::new(i, 1, LogicalTime(base + i * 10)))
                .collect();
            rt.ingest(job, source, tuples);
        }
        std::thread::sleep(std::time::Duration::from_millis(20));
        for source in [0u32, 1] {
            let tuples = (0..50)
                .map(|i| Tuple::new(i, 1, LogicalTime(50_000 + i)))
                .collect();
            rt.ingest(job, source, tuples);
        }
        assert!(rt.drain(std::time::Duration::from_secs(5)), "queue drains");
        // The first window should have fired.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        let mut got = 0usize;
        while std::time::Instant::now() < deadline {
            if let Ok(ev) = rx.recv_timeout(std::time::Duration::from_millis(100)) {
                got += ev.batch.len();
                break;
            }
        }
        assert!(got > 0, "sink produced grouped output");
        let stats = rt.job_stats(job);
        assert!(stats.outputs >= 1);
        rt.shutdown();
    }

    #[test]
    fn multiple_jobs_isolated() {
        let rt = Runtime::start(RuntimeConfig::default().with_workers(2));
        let a = rt.deploy(&tiny_query("a", 5_000), &ExpandOptions::default());
        let b = rt.deploy(&tiny_query("b", 5_000), &ExpandOptions::default());
        assert_ne!(a, b);
        for job in [a, b] {
            rt.ingest(job, 0, vec![Tuple::new(1, 1, LogicalTime(1_000))]);
            rt.ingest(job, 1, vec![Tuple::new(2, 1, LogicalTime(1_000))]);
            rt.ingest(job, 0, vec![Tuple::new(1, 1, LogicalTime(9_000))]);
            rt.ingest(job, 1, vec![Tuple::new(2, 1, LogicalTime(9_000))]);
        }
        assert!(rt.drain(std::time::Duration::from_secs(5)));
        rt.shutdown();
    }

    #[test]
    fn shutdown_is_prompt_when_idle() {
        let rt = Runtime::start(RuntimeConfig::default().with_workers(4));
        let started = std::time::Instant::now();
        rt.shutdown();
        assert!(started.elapsed() < std::time::Duration::from_secs(1));
    }

    #[test]
    fn scheduler_stats_accumulate() {
        let rt = Runtime::start(RuntimeConfig::default().with_workers(1));
        let job = rt.deploy(&tiny_query("s", 5_000), &ExpandOptions::default());
        rt.ingest(job, 0, vec![Tuple::new(1, 1, LogicalTime(1))]);
        assert!(rt.drain(std::time::Duration::from_secs(5)));
        assert!(rt.scheduler_stats().messages_scheduled > 0);
        rt.shutdown();
    }
}
