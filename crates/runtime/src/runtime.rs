//! The real-time actor runtime: a worker pool draining the *sharded*
//! Cameo scheduler under wall-clock time.
//!
//! This is the Flare/Orleans role in the paper's stack, rebuilt the way
//! the networking guides recommend for a CPU-scheduling executor: plain
//! worker *threads* (not an async runtime — operators are CPU-bound and
//! the scheduler itself decides interleaving), and actor exclusivity
//! enforced by operator leases plus a per-instance mutex (never
//! contended in steady state, because the scheduler leases an operator
//! to one worker at a time).
//!
//! ## Scheduling path
//!
//! Earlier versions funneled every `submit`/`acquire`/`decide`/`release`
//! through a single `Mutex<CameoScheduler>`, so all workers serialized
//! on one lock per message — the opposite of the paper's "scheduler
//! overhead stays negligible as workers scale" claim (§5.2, Fig 12).
//! The runtime now drives a [`ShardedScheduler`]: operators hash to
//! independent scheduler shards, each worker is *affine* to a home
//! shard (`worker_index % shards`), and a worker steals the globally
//! most urgent operator from other shards whenever its home shard is
//! idle or strictly less urgent.
//!
//! Ingress is *lock-free*: `submit` pushes into the target shard's
//! mailbox with a CAS, lowers the shard's best-priority hint, and wakes
//! a parked worker — it never takes the shard mutex, so ingest threads
//! (TCP sources, operator fan-out) cannot block the worker draining
//! that shard. Ingress is also *batched end to end*: source batches
//! ([`Runtime::ingest_batch`]), whole socket reads
//! ([`Runtime::ingest_frames`] — every frame one TCP read completed,
//! see `crate::net`) and operator fan-out all travel through
//! `ShardedScheduler::submit_batch`, paying one mailbox CAS, one hint
//! update and one wake per *shard* per call instead of per message. Workers fold the mailbox into the shard's two-level
//! queue under the lock they already hold at acquire/take/decide/
//! release boundaries. Per-shard condvars replace the single condvar;
//! parks are bounded (`PARK_TIMEOUT`) so cross-shard work is picked up
//! promptly even when wakeups race, and the park/wake handshake itself
//! is lost-wakeup-free (see `cameo_core::shard`).
//!
//! Lock ordering: a worker holds at most one instance lock at a time;
//! reply application locks the *sender* instance only after the
//! executing instance's guard is dropped. No shard lock is ever held
//! while an instance lock is held (the sharded scheduler acquires and
//! releases its internal locks within each call).
//!
//! ## Elasticity
//!
//! With [`RuntimeConfig::with_elastic`] the runtime runs a controller
//! thread sampling the deadline-miss-rate sensor (each job's sink-side
//! on-time counters, updated under the stats mutex the sink path
//! already takes — the sensor adds **no** producer-side atomics) every
//! [`ElasticConfig::tick`] and applying the
//! [`ElasticController`]'s actions: grow the worker pool toward
//! `max_workers` when the miss rate crosses the high watermark, retire
//! workers down to `min_workers` on sustained quiescence (a retired
//! worker exits at its next idle check, bounded by `PARK_TIMEOUT`),
//! migrate the busiest operator off an overloaded shard
//! ([`ShardedScheduler::migrate_operator`]), retune the steal
//! threshold from observed steal/acquisition ratios, and release
//! fully-drained arena segments
//! ([`ShardedScheduler::reclaim_quiescent`], with the returned token
//! held for one further tick as a grace period). The controller is the
//! *same* pure state machine the simulator ticks deterministically —
//! only the clock and the actuator wiring differ. Without
//! `with_elastic` no controller thread exists and the worker pool is
//! exactly the configured fixed size.
//!
//! ## Job lifecycle
//!
//! The control plane is fallible and full-lifecycle: [`Runtime::deploy`]
//! validates the job graph and returns `Result` (no panics on bad
//! specs), every per-job entry point checks the handle against a
//! **generational slot-map** jobs table, and [`Runtime::undeploy`]
//! drains a job's in-flight work, retires it inside the scheduler
//! ([`ShardedScheduler::retire_job`]) and frees its slot for reuse. A
//! [`JobHandle`] is `(slot, generation)`: after undeploy the slot's
//! generation advances, so a stale handle gets
//! [`JobError::Stale`] — never another job's data — and a stale
//! in-flight message is dropped at a generation check before it can
//! touch the slot's new occupant.

use crate::durability::{
    self, DurState, DurabilityConfig, FrameRecord, JobSnapshot, JournalRecord, RecoverError,
    RecoveryReport, SlotSnapshot, SnapshotError, SpecRegistry,
};
use crate::msg::{IngestFrame, RtMsg, SenderRef};
use crate::stats::{JobStats, JobStatsSnapshot};
use cameo_core::arena::ReclaimedSegments;
use cameo_core::config::SchedulerConfig;
use cameo_core::elastic::{
    ElasticAction, ElasticConfig, ElasticController, ElasticObservation, ElasticTelemetry,
};
use cameo_core::ids::JobId;
use cameo_core::mailbox::Mail;
use cameo_core::policy::{LlfPolicy, MessageStamp, Policy};
use cameo_core::scheduler::{Decision, SchedulerStats};
use cameo_core::shard::ShardedScheduler;
use cameo_core::time::{Clock, Micros, PhysicalTime, SystemClock};
use cameo_dataflow::event::{Batch, Tuple};
use cameo_dataflow::expand::{
    route_batch, route_batch_owned, ExpandOptions, ExpandedJob, OperatorInstance,
};
use cameo_dataflow::graph::{GraphError, JobSpec};
use std::fmt;
use std::ops::Deref;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, RwLock, Weak};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Upper bound on how long an idle worker sleeps before rescanning all
/// shards. This is the worst-case steal latency when every wakeup
/// races; in steady state submits wake the right shard directly.
const PARK_TIMEOUT: Duration = Duration::from_millis(1);

/// An output emitted by a job's sink operator.
#[derive(Clone, Debug)]
pub struct OutputEvent {
    /// Handle of the job that produced the output.
    pub job: JobHandle,
    /// The sink's output batch, shared by reference: every subscriber
    /// to the job receives a clone of the same `Arc`, so fan-out never
    /// deep-copies the tuples (audited by
    /// [`JobStatsSnapshot::delivered`](crate::stats::JobStatsSnapshot)
    /// — see `Runtime::subscribe`).
    pub batch: Arc<Batch>,
    /// End-to-end latency of the batch (arrival of its closing input to
    /// this output).
    pub latency: Micros,
    /// Wall-clock emission time.
    pub at: PhysicalTime,
}

/// Identifies a deployed job: a slot in the runtime's jobs table plus
/// the slot's *generation* at deploy time.
///
/// Slots are reused after [`Runtime::undeploy`], but every reuse bumps
/// the slot's generation, so a handle held across its job's retirement
/// goes stale rather than silently addressing the slot's next occupant:
/// every per-job entry point returns [`JobError::Stale`] for it. A
/// handle is `Copy` and hashable — share it freely across threads.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct JobHandle {
    slot: u32,
    gen: u32,
}

impl JobHandle {
    /// The jobs-table slot this handle addresses. This is the job id
    /// the scheduler keys on and the `job` field of the TCP ingest wire
    /// format ([`IngestFrame::job`]). Wire format v2 pairs it with
    /// [`generation`](Self::generation) ([`IngestFrame::gen`]), so a
    /// remote frame is delivered only to the occupant its sender held a
    /// handle for — frames racing the slot's reuse are rejected and
    /// counted, exactly like a stale in-process handle.
    pub fn slot(&self) -> u32 {
        self.slot
    }

    /// The slot generation this handle was issued for. Stale once the
    /// job is undeployed. Stamped into every v2 wire frame
    /// ([`IngestFrame::gen`]).
    pub fn generation(&self) -> u32 {
        self.gen
    }
}

/// Why a deployment was rejected. Deployment is *total*: every invalid
/// spec maps to an error here instead of a panic inside the engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeployError {
    /// The job graph failed validation (see [`GraphError`]).
    Graph(GraphError),
}

impl fmt::Display for DeployError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeployError::Graph(g) => write!(f, "invalid job graph: {g}"),
        }
    }
}

impl std::error::Error for DeployError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DeployError::Graph(g) => Some(g),
        }
    }
}

impl From<GraphError> for DeployError {
    fn from(g: GraphError) -> Self {
        DeployError::Graph(g)
    }
}

/// Why a per-job operation (`ingest`, `subscribe`, `job_stats`,
/// `undeploy`) was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobError {
    /// The handle's generation no longer matches its slot: the job was
    /// undeployed (and the slot possibly reused by a newer job). A
    /// stale handle is *rejected*, never routed to the slot's new
    /// occupant.
    Stale,
    /// The handle's slot was never allocated by this runtime — the
    /// handle came from somewhere else entirely.
    NotFound,
    /// The job is mid-[`undeploy`](Runtime::undeploy): new ingest is
    /// refused while in-flight work drains.
    Draining,
}

impl fmt::Display for JobError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JobError::Stale => write!(f, "stale job handle: the job was undeployed"),
            JobError::NotFound => write!(f, "unknown job handle"),
            JobError::Draining => write!(f, "job is draining (undeploy in progress)"),
        }
    }
}

impl std::error::Error for JobError {}

/// A live subscription to a job's sink outputs, returned by
/// [`Runtime::subscribe`]. Dereferences to the underlying
/// [`Receiver`], so `recv` / `try_recv` / `recv_timeout` / iteration
/// all work directly on it.
///
/// Dropping the subscription is how unsubscription works: the runtime
/// holds only a [`Weak`] liveness token per subscriber and prunes dead
/// entries on every later `subscribe` call and on every output
/// delivery, so abandoned subscriptions do not accumulate.
pub struct OutputSubscription {
    rx: Receiver<OutputEvent>,
    /// Liveness token: the runtime's subscriber entry holds the `Weak`
    /// side and treats an unupgradable token as "unsubscribed".
    _alive: Arc<()>,
}

impl Deref for OutputSubscription {
    type Target = Receiver<OutputEvent>;

    fn deref(&self) -> &Receiver<OutputEvent> {
        &self.rx
    }
}

/// One frame refused by the wire-v2 generation check, with enough
/// context for the transport layer to tell the producer why
/// ([`NackFrame`](crate::msg::NackFrame)): which slot, the stale
/// generation it sent, and the generation a live handle would carry.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RejectedFrame {
    /// Ordinal of the frame within the `ingest_frames` call, in
    /// iteration order — the serve loop maps it back to the connection
    /// that contributed the frame.
    pub index: usize,
    /// Jobs-table slot the frame addressed.
    pub job: u32,
    /// Stale generation the frame carried.
    pub gen: u32,
    /// Generation of the slot's current occupant.
    pub expected_gen: u32,
}

/// Outcome of one [`Runtime::ingest_frames`] call (one socket read's
/// worth of frames).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct IngestOutcome {
    /// Frames routed and submitted.
    pub frames: usize,
    /// Well-formed frames dropped because their jobs-table slot is
    /// vacant (never deployed, or retired) or its occupant is draining
    /// mid-`undeploy`.
    pub dropped: usize,
    /// Frames whose wire generation ([`IngestFrame::gen`]) did not
    /// match the slot's current occupant: their job was undeployed (and
    /// the slot reused) while they were in flight. Rejected, never
    /// routed to the new occupant — the wire-side twin of
    /// [`JobError::Stale`].
    pub gen_rejected: usize,
    /// Scheduler messages the submitted frames expanded into (what one
    /// `submit_batch` spliced across the shards).
    pub messages: usize,
    /// One entry per generation-rejected frame (so
    /// `rejected.len() == gen_rejected`), carrying the details a
    /// transport needs to NACK the producer.
    pub rejected: Vec<RejectedFrame>,
}

/// Runtime configuration.
pub struct RuntimeConfig {
    /// Worker threads draining the scheduler (0 = queue-only runtime).
    pub workers: usize,
    /// Scheduling quantum (§5.2; default 1 ms).
    pub quantum: Micros,
    /// The priority policy building and interpreting contexts.
    pub policy: Arc<dyn Policy>,
    /// Scheduler shards. `0` (default) auto-sizes to
    /// `min(workers, 8)`; the count is always clamped to `workers` so
    /// every shard has at least one affine worker.
    pub shards: usize,
    /// Steal slack passed through to [`SchedulerConfig`].
    pub steal_threshold: Micros,
    /// Lock-free mailbox ingress (default). `false` restores the
    /// locked submit path; passed through to [`SchedulerConfig`].
    pub mailbox: bool,
    /// Mailbox messages admitted per lock acquisition (0 = all);
    /// passed through to [`SchedulerConfig`].
    pub mailbox_drain_batch: usize,
    /// Pin workers to cores via `sched_setaffinity`, so each home
    /// shard's mailbox arena is touched by one core (default off;
    /// Linux only, graceful no-op elsewhere). The runtime reads its
    /// *allowed* core set (`sched_getaffinity`) once at startup and
    /// round-robins workers within it, so co-located runtimes confined
    /// to disjoint cpusets no longer pile onto core 0. Passed through
    /// to [`SchedulerConfig`]; honored at worker spawn.
    pub pin_workers: bool,
    /// Cost-profiling EWMA smoothing factor applied to every deployed
    /// operator's converter (`None` keeps
    /// [`cameo_core::profile::DEFAULT_ALPHA`], or whatever the job's
    /// [`ExpandOptions`] chose).
    pub profile_alpha: Option<f64>,
    /// Elastic-runtime controller knobs (`None` — the default — keeps
    /// the pool fixed and spawns no controller thread; every scheduler
    /// path then behaves bit-identically to a pre-elastic runtime).
    /// `workers` is the *initial* pool size; the controller moves it
    /// within `[elastic.min_workers, elastic.max_workers]`.
    pub elastic: Option<ElasticConfig>,
    /// Crash durability (`None` — the default — journals nothing and
    /// adds no ingest-path work beyond one branch). With a config, every
    /// accepted ingress call is group-committed to the journal *before*
    /// its messages are published, deploy/undeploy write lifecycle
    /// records, and [`Runtime::snapshot`] /
    /// [`Runtime::recover`] become available.
    pub durability: Option<DurabilityConfig>,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        RuntimeConfig {
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
            quantum: Micros::from_millis(1),
            policy: Arc::new(LlfPolicy),
            shards: 0,
            steal_threshold: Micros::ZERO,
            mailbox: true,
            mailbox_drain_batch: 0,
            pin_workers: false,
            profile_alpha: None,
            elastic: None,
            durability: None,
        }
    }
}

impl RuntimeConfig {
    /// Set the worker-thread count (must be nonzero here; construct the
    /// struct literally for a 0-worker queue-only runtime).
    pub fn with_workers(mut self, n: usize) -> Self {
        assert!(n > 0);
        self.workers = n;
        self
    }

    /// Set the scheduling quantum.
    pub fn with_quantum(mut self, q: Micros) -> Self {
        self.quantum = q;
        self
    }

    /// Set the scheduling policy.
    pub fn with_policy(mut self, p: Arc<dyn Policy>) -> Self {
        self.policy = p;
        self
    }

    /// Set the scheduler shard count (0 = auto-size).
    pub fn with_shards(mut self, n: usize) -> Self {
        self.shards = n;
        self
    }

    /// Set the work-stealing urgency slack.
    pub fn with_steal_threshold(mut self, slack: Micros) -> Self {
        self.steal_threshold = slack;
        self
    }

    /// Toggle lock-free mailbox ingress (on by default).
    pub fn with_mailbox(mut self, on: bool) -> Self {
        self.mailbox = on;
        self
    }

    /// Cap mailbox messages admitted per lock acquisition (0 = all).
    pub fn with_mailbox_drain_batch(mut self, batch: usize) -> Self {
        self.mailbox_drain_batch = batch;
        self
    }

    /// Pin workers (and their home shards' arenas) to cores.
    pub fn with_pinning(mut self, on: bool) -> Self {
        self.pin_workers = on;
        self
    }

    /// Enable the elastic controller (miss-rate-driven worker scaling,
    /// hot-operator re-placement, arena reclamation on quiescence).
    /// The initial worker count is clamped into the controller's
    /// `[min_workers, max_workers]` band at startup.
    pub fn with_elastic(mut self, cfg: ElasticConfig) -> Self {
        self.elastic = Some(cfg);
        self
    }

    /// Enable crash durability: journal + snapshots rooted at the
    /// config's directory. See [`DurabilityConfig`].
    pub fn with_durability(mut self, cfg: DurabilityConfig) -> Self {
        self.durability = Some(cfg);
        self
    }

    /// Override the cost-profiling smoothing factor for every job this
    /// runtime deploys (must be in `(0, 1]`).
    pub fn with_profile_alpha(mut self, alpha: f64) -> Self {
        assert!(
            alpha > 0.0 && alpha <= 1.0,
            "profile_alpha must be in (0, 1]"
        );
        self.profile_alpha = Some(alpha);
        self
    }

    fn effective_shards(&self) -> usize {
        let requested = if self.shards == 0 {
            self.workers.min(8)
        } else {
            self.shards
        };
        // `workers == 0` (a queue-only runtime that never drains) is
        // still a valid configuration; it gets one shard to submit into.
        requested.clamp(1, self.workers.max(1))
    }
}

/// One subscriber entry: the event channel plus a liveness token (the
/// strong side lives inside the handed-out [`OutputSubscription`]).
struct Subscriber {
    tx: Sender<OutputEvent>,
    alive: Weak<()>,
}

impl Subscriber {
    fn live(&self) -> bool {
        self.alive.strong_count() > 0
    }
}

struct JobRt {
    instances: Vec<Mutex<OperatorInstance>>,
    ingests: Vec<usize>,
    /// Spec name — what the journal's `Deploy` records and snapshot
    /// manifests key the [`SpecRegistry`] with at recovery.
    name: String,
    latency_constraint: Micros,
    /// Generation of the jobs-table slot this job occupies; stamped
    /// into every scheduler message and checked before execution.
    gen: u32,
    /// Set by `undeploy`: new ingest is refused while in-flight work
    /// drains.
    draining: AtomicBool,
    /// Scheduler messages submitted for this job and not yet executed.
    /// Batched increments at every submission point, one decrement per
    /// executed message (program order on the same atomic guarantees a
    /// worker's fan-out increment lands before its own decrement, so
    /// the count never dips to zero while a causal chain is alive).
    /// `undeploy`'s graceful-drain phase sleeps on [`Self::drain_cv`]
    /// until this reaches zero.
    inflight: AtomicU64,
    /// Pairs with `drain_cv`: `undeploy` re-checks `inflight` under
    /// this lock before each wait, and [`Self::dec_inflight`] bumps the
    /// lock before notifying, so the last decrement can never slip into
    /// the check→wait window unseen (same shape as the scheduler's
    /// park/wake handshake).
    drain_lock: Mutex<()>,
    /// Signalled by the decrement that takes `inflight` to zero while
    /// the job is draining.
    drain_cv: Condvar,
    stats: Arc<JobStats>,
    subscribers: Mutex<Vec<Subscriber>>,
}

impl JobRt {
    /// Decrement the in-flight count; the decrement that reaches zero
    /// on a draining job wakes the waiting `undeploy`.
    ///
    /// Ordering (mirrors the shard park/wake protocol): the `SeqCst`
    /// decrement and the `SeqCst` load of `draining` here, against
    /// `undeploy`'s `SeqCst` swap of `draining` and `SeqCst` load of
    /// `inflight`, give a single total order — either this decrement
    /// sees `draining` and notifies, or `undeploy`'s count load sees
    /// the decrement and never sleeps on it. The lock bump before the
    /// notify closes the remaining race against a waiter between its
    /// predicate check and its wait.
    fn dec_inflight(&self) {
        let was = self.inflight.fetch_sub(1, Ordering::SeqCst);
        if was == 1 && self.draining.load(Ordering::SeqCst) {
            drop(self.drain_lock.lock().unwrap_or_else(|p| p.into_inner()));
            self.drain_cv.notify_all();
        }
    }
}

/// One slot of the generational jobs table.
struct JobSlot {
    /// Current generation. Bumped when the occupant is retired, which
    /// is what invalidates outstanding handles and in-flight messages.
    gen: u32,
    /// The occupant, if any.
    job: Option<Arc<JobRt>>,
}

/// The generational slot map behind every `JobHandle`.
#[derive(Default)]
struct JobsTable {
    slots: Vec<JobSlot>,
    /// Vacant slot indices, reused LIFO by `deploy`.
    free: Vec<u32>,
}

impl JobsTable {
    /// The slot's occupant, when the handle's generation is current.
    fn get(&self, handle: JobHandle) -> Result<&Arc<JobRt>, JobError> {
        let slot = self
            .slots
            .get(handle.slot as usize)
            .ok_or(JobError::NotFound)?;
        if slot.gen != handle.gen {
            return Err(JobError::Stale);
        }
        // Generation bumps and occupancy change together under the
        // write lock, so a matching generation implies an occupant;
        // stay defensive anyway.
        slot.job.as_ref().ok_or(JobError::Stale)
    }

    /// The current occupant of a raw slot index (wire-level lookup).
    fn occupant(&self, slot: u32) -> Option<&Arc<JobRt>> {
        self.slots.get(slot as usize).and_then(|s| s.job.as_ref())
    }
}

struct Shared {
    clock: SystemClock,
    sched: ShardedScheduler<RtMsg>,
    jobs: RwLock<JobsTable>,
    policy: Arc<dyn Policy>,
    shutdown: AtomicBool,
    /// In-flight messages abandoned at the pre-execution generation
    /// check (their job was undeployed while they sat in the queue).
    stale_exec_drops: AtomicU64,
    /// Workers whose `sched_setaffinity` call succeeded.
    pinned: AtomicUsize,
    /// Deploy-time converter smoothing override (see `RuntimeConfig`).
    profile_alpha: Option<f64>,
    /// Multi-frame ingest calls that submitted at least one frame
    /// (each is one `submit_batch` — at most one mailbox publication
    /// per shard for the whole socket read).
    net_batches: AtomicU64,
    /// Frames submitted through those calls; `frames_coalesced /
    /// net_batches` is the achieved frames-per-read ratio.
    frames_coalesced: AtomicU64,
    /// Wire frames rejected at the v2 generation check (their job was
    /// undeployed — and its slot possibly reused — while the frame was
    /// in flight). Folded into `SchedulerStats::gen_rejected_frames`.
    gen_rejected: AtomicU64,
    /// The worker-pool size the elastic controller currently wants. A
    /// worker whose index is `>= target_workers` exits at its next
    /// idle check; growth spawns fresh threads for the missing
    /// indices. Constant (== the configured pool) without elasticity.
    target_workers: AtomicUsize,
    /// Workers currently inside `worker_loop` (the actual pool gauge;
    /// lags `target_workers` by at most one park timeout on shrink and
    /// one thread spawn on growth).
    live_workers: AtomicUsize,
    /// Worker-spawn parameters, kept so the controller can grow the
    /// pool with exactly the same pinning behavior as startup.
    pin_workers: bool,
    allowed_cores: Vec<usize>,
    cpus: usize,
    /// Latest controller telemetry (ticks/grows/shrinks/migrations/
    /// reclaims), written once per controller tick.
    elastic_telemetry: Mutex<ElasticTelemetry>,
    /// The controller thread sleeps on this between ticks; `shutdown`
    /// notifies it so teardown never waits out a tick.
    ctl_lock: Mutex<()>,
    ctl_cv: Condvar,
    /// Durability state (journal + snapshot bookkeeping), when
    /// configured.
    dur: Option<DurState>,
}

/// Recover a poisoned guard: a panicking operator must not wedge the
/// rest of the runtime (mirrors the old parking_lot behavior).
fn relock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|p| p.into_inner())
}

/// RAII +1 on a job's in-flight count for the duration of one ingress
/// call. Taken *before* the draining check (SeqCst on both sides, so
/// either the ingress sees the draining flag and refuses, or
/// `undeploy`'s drain wait sees the count and waits): without it, an
/// ingress preempted between its draining check and its message-count
/// increment could slip past a concurrent undeploy's drain, and tuples
/// accepted with `Ok(())` would be silently discarded by the
/// retirement purge.
struct IngressGuard(Arc<JobRt>);

impl IngressGuard {
    fn new(jrt: &Arc<JobRt>) -> Self {
        jrt.inflight.fetch_add(1, Ordering::SeqCst);
        IngressGuard(jrt.clone())
    }
}

impl Drop for IngressGuard {
    fn drop(&mut self) {
        self.0.dec_inflight();
    }
}

impl Shared {
    fn now(&self) -> PhysicalTime {
        self.clock.now()
    }

    /// True when ingress/lifecycle events should be journaled (durable
    /// runtime outside of recovery replay).
    fn dur_active(&self) -> bool {
        self.dur.as_ref().is_some_and(DurState::is_active)
    }

    /// Append one record to the journal (no-op without durability or
    /// during replay). Journal I/O failure is reported, not propagated:
    /// the runtime favors availability — the stream keeps flowing and
    /// the operator keeps crash-consistent state only up to the failure.
    fn dur_append(&self, rec: &JournalRecord) {
        if let Some(d) = &self.dur {
            if d.is_active() {
                if let Err(e) = d.journal.begin().append(rec) {
                    eprintln!("cameo-runtime: journal append failed: {e}");
                }
            }
        }
    }

    /// Batched submit: every shard touched pays one mailbox CAS, one
    /// hint update and one wake (the scheduler wakes parked workers on
    /// those shards internally), and nodes come from the shards'
    /// arenas — the fan-out path stays off the allocator entirely.
    fn submit_batch<I: IntoIterator<Item = (cameo_core::ids::OperatorKey, RtMsg)>>(
        &self,
        items: I,
    ) {
        let _ = self.sched.submit_batch(items.into_iter().map(|(key, msg)| {
            let pri = msg.pc.priority;
            (key, msg, pri)
        }));
    }

    /// Route one or more source batches through a job's ingest
    /// instance, appending the priced outbound messages (with their
    /// scheduler keys) to `outbound`. Shared by the single-batch and
    /// the multi-frame ingest entry points, so both build identical
    /// messages and differ only in how many frames feed one
    /// `submit_batch`. The instance mutex is taken **once** for the
    /// whole batch slice — a coalesced burst pays the routing lock per
    /// `(job, source)` group, not per frame. Each batch stays its own
    /// message set (frame boundaries are preserved downstream).
    fn route_ingest(
        &self,
        jrt: &JobRt,
        job: u32,
        ingest_idx: usize,
        batches: Vec<Batch>,
        outbound: &mut Vec<(cameo_core::ids::OperatorKey, RtMsg)>,
    ) {
        let jid = JobId(job);
        let constraint = jrt.latency_constraint;
        let gen = jrt.gen;
        let mut inst = relock(&jrt.instances[ingest_idx]);
        let inst = &mut *inst;
        let converter = &mut inst.converter;
        let last = inst.outs.len().saturating_sub(1);
        for batch in batches {
            let stamp = MessageStamp {
                progress: batch.progress,
                time: batch.time,
            };
            // The batch is borrowed by every route but the last, which
            // consumes it: a single-target final route (the common,
            // parallelism-1 shape) then moves the tuples straight into
            // its message instead of cloning them.
            let mut batch = Some(batch);
            for (ri, route) in inst.outs.iter().enumerate() {
                let pc = self
                    .policy
                    .build_at_source(jid, stamp, constraint, &route.hop, converter);
                let routed = if ri == last {
                    route_batch_owned(route, batch.take().expect("last route consumes"))
                } else {
                    route_batch(route, batch.as_ref().expect("consumed only by last route"))
                };
                for (target, channel, sub) in routed {
                    outbound.push((
                        cameo_core::ids::OperatorKey::new(jid, target as u32),
                        RtMsg {
                            channel,
                            batch: sub,
                            pc,
                            sender: Some(SenderRef {
                                job,
                                op: ingest_idx as u32,
                                edge: route.edge,
                            }),
                            gen,
                        },
                    ));
                }
            }
        }
    }
}

/// The runtime: deploy jobs, ingest events, read output stats.
pub struct Runtime {
    shared: Arc<Shared>,
    /// Worker join handles. Behind a shared mutex because the elastic
    /// controller thread appends to it when it grows the pool; exited
    /// (shrunk-away) workers' handles stay until shutdown, where
    /// joining a finished thread is free.
    workers: Arc<Mutex<Vec<JoinHandle<()>>>>,
    /// The elastic controller thread, when configured.
    controller: Option<JoinHandle<()>>,
}

impl Runtime {
    /// Start the runtime: spawn the worker pool and the sharded
    /// scheduler per `config`. Jobs are deployed afterwards via
    /// [`deploy`](Self::deploy).
    pub fn start(config: RuntimeConfig) -> Self {
        let shards = config.effective_shards();
        let mut sched_config = SchedulerConfig::default()
            .with_quantum(config.quantum)
            .with_shards(shards)
            .with_steal_threshold(config.steal_threshold)
            .with_mailbox(config.mailbox)
            .with_mailbox_drain_batch(config.mailbox_drain_batch)
            .with_pinning(config.pin_workers);
        if let Some(alpha) = config.profile_alpha {
            sched_config = sched_config.with_profile_alpha(alpha);
        }
        // The composed SchedulerConfig is the operative record: worker
        // spawn reads the pinning flag back from it, so a scheduler
        // config inspected later tells the truth about this runtime.
        let pin = sched_config.pin_workers;
        let cpus = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        // The startup affinity mask: workers round-robin within it, so
        // two runtimes confined to disjoint cpusets pin onto disjoint
        // cores instead of both counting `0, 1, 2, …` from core 0.
        let allowed: Vec<usize> = if pin {
            cameo_core::affinity::allowed_cores()
        } else {
            Vec::new()
        };
        // The initial pool; the controller (when configured) moves the
        // target within its band, so start inside it.
        let initial = match &config.elastic {
            Some(e) => config.workers.clamp(e.min_workers, e.max_workers),
            None => config.workers,
        };
        let shared = Arc::new(Shared {
            clock: SystemClock::new(),
            sched: ShardedScheduler::new(sched_config),
            jobs: RwLock::new(JobsTable::default()),
            policy: config.policy.clone(),
            shutdown: AtomicBool::new(false),
            stale_exec_drops: AtomicU64::new(0),
            pinned: AtomicUsize::new(0),
            // As with pinning: when set, the value deploys read comes
            // back out of the composed SchedulerConfig.
            profile_alpha: config.profile_alpha.map(|_| sched_config.profile_alpha),
            net_batches: AtomicU64::new(0),
            frames_coalesced: AtomicU64::new(0),
            gen_rejected: AtomicU64::new(0),
            target_workers: AtomicUsize::new(initial),
            live_workers: AtomicUsize::new(0),
            pin_workers: pin,
            allowed_cores: allowed,
            cpus,
            elastic_telemetry: Mutex::new(ElasticTelemetry::default()),
            ctl_lock: Mutex::new(()),
            ctl_cv: Condvar::new(),
            // A journal that cannot open is a startup invariant
            // violation (bad path, permissions): fail loudly here
            // rather than run non-durably against the caller's intent.
            dur: config
                .durability
                .as_ref()
                .map(|d| DurState::open(d).expect("open durability journal")),
        });
        let workers = Arc::new(Mutex::new(
            (0..initial).map(|i| spawn_worker(&shared, i)).collect(),
        ));
        let controller = config.elastic.map(|cfg| {
            let sh = shared.clone();
            let pool = workers.clone();
            std::thread::Builder::new()
                .name("cameo-elastic".into())
                .spawn(move || controller_loop(sh, cfg, pool))
                .expect("spawn elastic controller thread")
        });
        Runtime {
            shared,
            workers,
            controller,
        }
    }

    /// Number of workers the kernel accepted a core pin for (zero when
    /// [`RuntimeConfig::with_pinning`] is off or unsupported).
    pub fn pinned_workers(&self) -> usize {
        self.shared.pinned.load(Ordering::Relaxed)
    }

    /// Deploy a job; events may be ingested immediately afterwards.
    ///
    /// The spec is validated via the now-fallible
    /// [`ExpandedJob::expand`]: an invalid graph (no ingest stage, a
    /// cycle, zero parallelism, …) is rejected with the precise
    /// [`GraphError`] instead of panicking — a division-by-zero deep in
    /// [`Runtime::ingest`] used to be the failure mode for a job with
    /// no source instances.
    ///
    /// Slots freed by [`undeploy`](Self::undeploy) are reused; the new
    /// handle carries the slot's bumped generation, so handles to the
    /// previous occupant stay invalid.
    pub fn deploy(&self, spec: &JobSpec, opts: &ExpandOptions) -> Result<JobHandle, DeployError> {
        // Reserve a slot under the write lock, but run the expansion
        // *unlocked*: expanding builds every operator instance of the
        // job and can be arbitrarily large, and holding the jobs write
        // lock across it would stall every worker's per-message
        // `jobs.read()`. A reserved-but-uninstalled slot is harmless —
        // no handle for it exists yet, and wire frames addressing it
        // are dropped as vacant.
        let (slot, gen) = {
            let mut jobs = self.shared.jobs.write().unwrap_or_else(|p| p.into_inner());
            let slot = match jobs.free.pop() {
                Some(s) => s,
                None => {
                    jobs.slots.push(JobSlot { gen: 0, job: None });
                    (jobs.slots.len() - 1) as u32
                }
            };
            (slot, jobs.slots[slot as usize].gen)
        };
        let id = JobId(slot);
        // Hand the reserved slot back on *any* early exit — including a
        // panic inside expansion, which runs user-supplied operator
        // factories. Without this, a panicking factory would leak one
        // permanently-vacant slot per failed deploy.
        struct SlotReservation<'a> {
            shared: &'a Shared,
            slot: u32,
            armed: bool,
        }
        impl Drop for SlotReservation<'_> {
            fn drop(&mut self) {
                if self.armed {
                    self.shared
                        .jobs
                        .write()
                        .unwrap_or_else(|p| p.into_inner())
                        .free
                        .push(self.slot);
                }
            }
        }
        let mut reservation = SlotReservation {
            shared: &self.shared,
            slot,
            armed: true,
        };
        let mut exp = ExpandedJob::expand(spec, id, opts).map_err(DeployError::Graph)?;
        // Runtime-level smoothing override; a job-level choice in the
        // ExpandOptions wins over the runtime default.
        if let Some(alpha) = self.shared.profile_alpha {
            if opts.profile_alpha.is_none() {
                for inst in exp.instances.iter_mut() {
                    inst.converter.set_profile_alpha(alpha);
                }
            }
        }
        // Slot reuse: lift the scheduler-side retirement mark left by
        // the previous occupant's undeploy, so the new job's messages
        // are accepted again.
        self.shared.sched.reinstate_job(id);
        let name = exp.name.clone();
        let job = JobRt {
            ingests: exp.ingests.clone(),
            name: name.clone(),
            latency_constraint: exp.latency_constraint,
            gen,
            draining: AtomicBool::new(false),
            inflight: AtomicU64::new(0),
            drain_lock: Mutex::new(()),
            drain_cv: Condvar::new(),
            stats: Arc::new(JobStats::new(exp.latency_constraint)),
            subscribers: Mutex::new(Vec::new()),
            instances: exp.instances.into_iter().map(Mutex::new).collect(),
        };
        // The slot is about to be occupied, not returned.
        reservation.armed = false;
        self.shared
            .jobs
            .write()
            .unwrap_or_else(|p| p.into_inner())
            .slots[slot as usize]
            .job = Some(Arc::new(job));
        // Journal the deployment *after* releasing the jobs write lock
        // (global lock order: jobs lock → journal lock; a writer must
        // never wait on the journal). A crash in the window between the
        // install and this append loses a deployment whose caller never
        // saw `Ok` — and no frame can have been admitted for it, since
        // admission requires the handle this call has not returned yet.
        self.shared
            .dur_append(&JournalRecord::Deploy { slot, gen, name });
        Ok(JobHandle { slot, gen })
    }

    /// Undeploy a job: gracefully drain its in-flight work (bounded by
    /// a 5-second default — see
    /// [`undeploy_within`](Self::undeploy_within)), then retire it.
    /// Returns the number of messages the scheduler still had to purge
    /// after the drain window (zero when the drain completed).
    pub fn undeploy(&self, job: JobHandle) -> Result<u64, JobError> {
        self.undeploy_within(job, Duration::from_secs(5))
    }

    /// [`undeploy`](Self::undeploy) with an explicit drain budget.
    ///
    /// The sequence is: mark the job draining (new `ingest` calls get
    /// [`JobError::Draining`]; a concurrent `undeploy` of the same
    /// handle gets it too), sleep on the job's drain condvar until its
    /// in-flight message count reaches zero or the `drain` budget
    /// expires — the decrement that hits zero wakes this thread
    /// directly, so drain completion is observed at the moment it
    /// happens, not at the next poll tick (the wait is skipped when the
    /// runtime has no workers — nothing would ever drain) — then retire
    /// the job in the scheduler — [`ShardedScheduler::retire_job`] purges whatever the
    /// drain left in every shard's mailbox and two-level queue and
    /// keeps refusing the job id until the slot is redeployed — and
    /// finally free the slot, bumping its generation so outstanding
    /// handles and in-flight messages of the retired job are rejected
    /// everywhere.
    pub fn undeploy_within(&self, job: JobHandle, drain: Duration) -> Result<u64, JobError> {
        let jrt = self.lookup(job)?;
        if jrt.draining.swap(true, Ordering::SeqCst) {
            return Err(JobError::Draining);
        }
        if self.shared.target_workers.load(Ordering::SeqCst) > 0 {
            // SeqCst pairs with the ingress guards' SeqCst increment:
            // an ingress that passed its draining check is visible
            // here, so its messages are waited for, not purged. The
            // count is re-checked under the drain lock before every
            // wait and `dec_inflight` bumps that lock before notifying,
            // so the zero-crossing cannot fall unseen between a check
            // and its wait — the same no-lost-wakeup shape as the
            // scheduler's park/wake handshake.
            let deadline = Instant::now() + drain;
            let mut held = jrt.drain_lock.lock().unwrap_or_else(|p| p.into_inner());
            while jrt.inflight.load(Ordering::SeqCst) > 0 {
                let now = Instant::now();
                if now >= deadline {
                    break;
                }
                held = jrt
                    .drain_cv
                    .wait_timeout(held, deadline - now)
                    .unwrap_or_else(|p| p.into_inner())
                    .0;
            }
            drop(held);
        }
        let purged = self.shared.sched.retire_job(JobId(job.slot)) as u64;
        {
            let mut jobs = self.shared.jobs.write().unwrap_or_else(|p| p.into_inner());
            let slot = &mut jobs.slots[job.slot as usize];
            slot.job = None;
            slot.gen = slot.gen.wrapping_add(1);
            jobs.free.push(job.slot);
        }
        // Journal after the write lock is released (jobs → journal
        // order). Replay is idempotent: an `Undeploy` whose slot
        // generation already advanced past `gen` is skipped.
        self.shared.dur_append(&JournalRecord::Undeploy {
            slot: job.slot,
            gen: job.gen,
        });
        Ok(purged)
    }

    /// Resolve a handle against the jobs table.
    fn lookup(&self, job: JobHandle) -> Result<Arc<JobRt>, JobError> {
        self.shared
            .jobs
            .read()
            .unwrap_or_else(|p| p.into_inner())
            .get(job)
            .cloned()
    }

    /// Subscribe to a job's sink outputs. Dropping the returned
    /// [`OutputSubscription`] unsubscribes: dead subscribers are pruned
    /// on every later `subscribe` and on every output delivery, so the
    /// subscriber list never grows with abandoned receivers.
    pub fn subscribe(&self, job: JobHandle) -> Result<OutputSubscription, JobError> {
        let jrt = self.lookup(job)?;
        let (tx, rx) = channel();
        let alive = Arc::new(());
        let mut subs = relock(&jrt.subscribers);
        subs.retain(Subscriber::live);
        subs.push(Subscriber {
            tx,
            alive: Arc::downgrade(&alive),
        });
        Ok(OutputSubscription { rx, _alive: alive })
    }

    /// Ingest a batch of tuples at one of the job's sources. Tuples
    /// without meaningful event times may use `LogicalTime::ZERO`; the
    /// runtime stamps ingestion time in that case.
    pub fn ingest(
        &self,
        job: JobHandle,
        source: u32,
        mut tuples: Vec<Tuple>,
    ) -> Result<(), JobError> {
        let now = self.shared.now();
        // Ingestion-time stamping for tuples without event time.
        for t in tuples.iter_mut() {
            if t.time.0 == 0 {
                t.time = cameo_core::time::LogicalTime(now.0);
            }
        }
        let batch = Batch::new(tuples, now);
        self.ingest_batch(job, source, batch)
    }

    /// Ingest a pre-stamped batch (arrival time is set to "now").
    pub fn ingest_batch(
        &self,
        job: JobHandle,
        source: u32,
        mut batch: Batch,
    ) -> Result<(), JobError> {
        let now = self.shared.now();
        batch.time = now;
        let jrt = self.lookup(job)?;
        // Guard before the draining check — see [`IngressGuard`].
        let _ingress = IngressGuard::new(&jrt);
        if jrt.draining.load(Ordering::SeqCst) {
            return Err(JobError::Draining);
        }
        // Capture the write-ahead record post-stamping, pre-routing:
        // replayed tuples must carry the logical times the operators
        // actually saw.
        let dur_rec = if self.shared.dur_active() {
            Some(FrameRecord::from_batch(job.slot, jrt.gen, source, &batch))
        } else {
            None
        };
        let ingest_idx = jrt.ingests[source as usize % jrt.ingests.len()];
        let mut outbound = Vec::new();
        self.shared
            .route_ingest(&jrt, job.slot, ingest_idx, vec![batch], &mut outbound);
        jrt.inflight
            .fetch_add(outbound.len() as u64, Ordering::AcqRel);
        // Write-ahead: the journal append lands before publication, and
        // the `IngressGuard` keeps `inflight` nonzero across the append,
        // so a concurrent snapshot cannot capture an offset past this
        // record while its effects are unprocessed.
        if let Some(rec) = dur_rec {
            self.shared.dur_append(&JournalRecord::Frames(vec![rec]));
        }
        // One mailbox CAS + one hint update + one wake per shard for
        // the whole batch, instead of per-message traffic.
        self.shared.submit_batch(outbound);
        Ok(())
    }

    /// Ingest a whole read's worth of decoded network frames as **one**
    /// scheduler batch: every frame is routed through its job's ingest
    /// instance, and the outbound messages of *all* frames are spliced
    /// into the per-shard mailboxes together — one mailbox CAS, one
    /// hint update and one wake per shard for the entire call, however
    /// many frames (and jobs) it spans. This is the multi-frame twin of
    /// [`ingest_batch`](Self::ingest_batch) and the entry point the TCP
    /// serve loop uses for frame coalescing.
    ///
    /// Frames addressed to vacant slots (jobs never deployed, or
    /// already retired) and to draining jobs are dropped and counted in
    /// the outcome (clients may race deployment and undeployment);
    /// unlike the in-process entry points, an unknown job here is
    /// remote-input data, not a programming error, so it must not
    /// panic. The v2 wire addresses `(slot, generation)` — a frame that
    /// races its job's undeploy, even one arriving after the slot's
    /// *reuse*, fails the generation check and is rejected
    /// ([`IngestOutcome::gen_rejected`]), never delivered to the new
    /// occupant: the remote twin of [`JobError::Stale`]. Tuples with
    /// `LogicalTime::ZERO` event times are stamped with ingestion time,
    /// as in [`ingest`](Self::ingest).
    ///
    /// `SchedulerStats::net_batches` / `frames_coalesced` record each
    /// call and its frame count, so the achieved coalescing ratio is
    /// observable.
    pub fn ingest_frames<I: IntoIterator<Item = IngestFrame>>(&self, frames: I) -> IngestOutcome {
        let now = self.shared.now();
        let mut out = IngestOutcome::default();
        // Resolve only the slots this read actually references (a
        // typical read is one job), cloning each referenced `Arc` under
        // a brief jobs-table read lock — never the whole table — and
        // dropping the lock before any routing: routing takes
        // per-instance mutexes, and holding the jobs RwLock across
        // those would let a slow UDF plus a waiting `deploy` (writer)
        // stall every worker's own `jobs.read()`. First-occurrence
        // cache, so each distinct slot pays one lock acquisition per
        // read regardless of frame count.
        let mut seen: Vec<(u32, Option<Arc<JobRt>>)> = Vec::new();
        // One ingress guard per live job this read touches, held until
        // the call's messages are submitted — see [`IngressGuard`].
        let mut ingress: Vec<IngressGuard> = Vec::new();
        // Group the read's frames by (job, ingest instance), keeping
        // first-seen group order and per-group frame order, so each
        // group pays its instance lock once — not once per frame.
        let mut groups: Vec<(u32, Arc<JobRt>, usize, Vec<Batch>)> = Vec::new();
        // Write-ahead capture of every admitted frame, group-committed
        // as ONE journal record for the whole call (post-stamping, so
        // replay reproduces the logical times the operators saw).
        let mut dur_recs: Vec<FrameRecord> = Vec::new();
        for (index, frame) in frames.into_iter().enumerate() {
            let slot = frame.job;
            let jrt = match seen.iter().find(|(s, _)| *s == slot) {
                Some((_, cached)) => cached.clone(),
                None => {
                    let occupant = self
                        .shared
                        .jobs
                        .read()
                        .unwrap_or_else(|p| p.into_inner())
                        .occupant(slot)
                        .cloned();
                    // Guard before the draining check (a rejected
                    // guard drops immediately).
                    let resolved = occupant.and_then(|j| {
                        let guard = IngressGuard::new(&j);
                        if j.draining.load(Ordering::SeqCst) {
                            None
                        } else {
                            ingress.push(guard);
                            Some(j)
                        }
                    });
                    seen.push((slot, resolved.clone()));
                    resolved
                }
            };
            let Some(jrt) = jrt else {
                out.dropped += 1;
                continue;
            };
            // The v2 generation check, per frame (one read can carry
            // frames from producers holding handles of different
            // generations): only the occupant the sender actually
            // addressed may receive its tuples.
            if frame.gen != jrt.gen {
                out.gen_rejected += 1;
                out.rejected.push(RejectedFrame {
                    index,
                    job: slot,
                    gen: frame.gen,
                    expected_gen: jrt.gen,
                });
                continue;
            }
            let ingest_idx = jrt.ingests[frame.source as usize % jrt.ingests.len()];
            let src = frame.source;
            let batch = frame.into_batch(now);
            if self.shared.dur_active() {
                dur_recs.push(FrameRecord::from_batch(slot, jrt.gen, src, &batch));
            }
            match groups
                .iter_mut()
                .find(|(j, _, idx, _)| *j == slot && *idx == ingest_idx)
            {
                Some((_, _, _, batches)) => batches.push(batch),
                None => groups.push((slot, jrt, ingest_idx, vec![batch])),
            }
            out.frames += 1;
        }
        let mut outbound = Vec::new();
        for (slot, jrt, ingest_idx, batches) in groups {
            let before = outbound.len();
            self.shared
                .route_ingest(&jrt, slot, ingest_idx, batches, &mut outbound);
            jrt.inflight
                .fetch_add((outbound.len() - before) as u64, Ordering::AcqRel);
        }
        out.messages = outbound.len();
        if out.frames > 0 {
            self.shared.net_batches.fetch_add(1, Ordering::Relaxed);
            self.shared
                .frames_coalesced
                .fetch_add(out.frames as u64, Ordering::Relaxed);
        }
        if out.gen_rejected > 0 {
            self.shared
                .gen_rejected
                .fetch_add(out.gen_rejected as u64, Ordering::Relaxed);
        }
        // Group commit: one journal append (and at most one fsync) for
        // the entire read, before publication; the per-job
        // `IngressGuard`s in `ingress` keep the admitted jobs
        // non-quiescent across the append.
        if !dur_recs.is_empty() {
            self.shared.dur_append(&JournalRecord::Frames(dur_recs));
        }
        self.shared.submit_batch(outbound);
        out
    }

    /// Latency statistics of a job's sink outputs. Available while the
    /// job is draining (the last snapshot before retirement is often
    /// the interesting one); stale once the job is gone.
    pub fn job_stats(&self, job: JobHandle) -> Result<JobStatsSnapshot, JobError> {
        Ok(self.lookup(job)?.stats.snapshot())
    }

    /// Scheduler counters, aggregated across shards, plus the
    /// runtime-level network-coalescing counters (`net_batches`,
    /// `frames_coalesced`, `gen_rejected_frames`), the runtime's own
    /// stale-execution drops (folded into `retired_drops`), and the
    /// deadline hit/miss totals folded from every deployed job's sink
    /// statistics — the same numbers the elastic controller samples.
    pub fn scheduler_stats(&self) -> SchedulerStats {
        let mut stats = self.shared.sched.stats();
        stats.net_batches += self.shared.net_batches.load(Ordering::Relaxed);
        stats.frames_coalesced += self.shared.frames_coalesced.load(Ordering::Relaxed);
        stats.gen_rejected_frames += self.shared.gen_rejected.load(Ordering::Relaxed);
        stats.retired_drops += self.shared.stale_exec_drops.load(Ordering::Relaxed);
        let jobs = self.shared.jobs.read().unwrap_or_else(|p| p.into_inner());
        for slot in &jobs.slots {
            if let Some(jrt) = &slot.job {
                let snap = jrt.stats.snapshot();
                stats.deadline_hits += snap.on_time;
                stats.deadline_misses += snap.outputs - snap.on_time;
            }
        }
        stats
    }

    /// Workers currently running (spawned and not yet retired). Tracks
    /// the elastic controller's target with a small lag: retiring
    /// workers notice the lowered target within one park timeout.
    pub fn worker_count(&self) -> usize {
        self.shared.live_workers.load(Ordering::SeqCst)
    }

    /// Arena segments currently held across all shards (live gauge; the
    /// elastic controller's quiescent reclamation lowers it back toward
    /// the baseline after a backlog spike drains).
    pub fn arena_segments(&self) -> usize {
        self.shared.sched.arena_segments()
    }

    /// Snapshot of the elastic controller's telemetry. All-zero when
    /// the runtime was started without [`RuntimeConfig::with_elastic`].
    pub fn elastic_telemetry(&self) -> ElasticTelemetry {
        *relock(&self.shared.elastic_telemetry)
    }

    /// Number of scheduler shards in use.
    pub fn shard_count(&self) -> usize {
        self.shared.sched.shard_count()
    }

    /// Pending message count.
    pub fn queue_len(&self) -> usize {
        self.shared.sched.len()
    }

    /// Wait (bounded) for the queue to drain.
    pub fn drain(&self, timeout: std::time::Duration) -> bool {
        let deadline = std::time::Instant::now() + timeout;
        while std::time::Instant::now() < deadline {
            if self.queue_len() == 0 {
                return true;
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        self.queue_len() == 0
    }

    /// Take an operator-state snapshot now, waiting up to five seconds
    /// for the runtime to quiesce. See
    /// [`snapshot_within`](Self::snapshot_within).
    pub fn snapshot(&self) -> Result<u64, SnapshotError> {
        self.snapshot_within(Duration::from_secs(5))
    }

    /// Take an operator-state snapshot at the next quiescent point
    /// (scheduler empty, no in-flight messages), waiting up to `wait`
    /// for one. Returns the snapshot's sequence number.
    ///
    /// Quiescence is verified while holding the journal lock, so the
    /// captured journal offset is a *consistent cut*: every record at
    /// or below it has been fully processed, every record above it has
    /// not been snapshotted. The latest two snapshots are retained and
    /// the journal is truncated below the older one (a torn newest
    /// snapshot then still recovers from the previous one).
    ///
    /// With the elastic controller configured
    /// ([`ElasticConfig::with_snapshot_dirty_bytes`]), snapshots are
    /// also taken automatically on quiescent ticks once enough journal
    /// bytes accumulate — this method is the manual/synchronous twin.
    pub fn snapshot_within(&self, wait: Duration) -> Result<u64, SnapshotError> {
        try_snapshot(&self.shared, wait)
    }

    /// Recover a crashed durable runtime from its journal and snapshots.
    ///
    /// `config` must carry the same [`DurabilityConfig`] directory the
    /// crashed runtime used; `registry` must register every spec that
    /// was deployed (operator factories are code — the journal records
    /// *which* job, the registry supplies *how* to rebuild it).
    ///
    /// The sequence: repair the journal's torn tail (checksum scan,
    /// truncate), load the newest valid snapshot (corrupt ones are
    /// rejected by checksum and counted), restore every slot's
    /// generation and every operator instance's state, then replay the
    /// journal suffix — deploys and undeploys through the slot map
    /// (idempotently: records already reflected in the snapshot are
    /// skipped), ingested frames through the normal ingest path with
    /// their **original** logical times and progress. The result is an
    /// at-least-once floor, and effectively-once outputs for
    /// deterministic operators.
    pub fn recover(
        config: RuntimeConfig,
        registry: &SpecRegistry,
    ) -> Result<(Runtime, RecoveryReport), RecoverError> {
        let dcfg = config
            .durability
            .clone()
            .ok_or(RecoverError::NotConfigured)?;
        let mut report = RecoveryReport::default();
        // Repair the torn tail first (open scans the newest segment and
        // truncates past the last valid record), then drop this handle:
        // `Runtime::start` below opens the journal for appending.
        {
            let (_repair, torn) =
                durability::Journal::open(&dcfg.dir, dcfg.fsync, dcfg.segment_bytes)?;
            report.torn_bytes += torn;
        }
        let (snaps, rejected) = durability::snapshot::load_all(&dcfg.dir)?;
        report.manifests_rejected = rejected;
        let latest = snaps.last().cloned();
        let from = latest.as_ref().map_or(0, |s| s.journal_offset);
        let (records, stats) = durability::journal::read_records(&dcfg.dir, from)?;
        report.torn_bytes += stats.torn_bytes;

        let rt = Runtime::start(config);
        let dur = rt.shared.dur.as_ref().expect("durability configured");
        // Replayed work must not be re-journaled: it is already in the
        // journal, at the offsets being replayed.
        dur.active.store(false, Ordering::Release);
        {
            let mut retained = relock(&dur.retained);
            for s in snaps.iter().rev().take(2).rev() {
                retained.push((s.seq, s.journal_offset));
            }
        }
        if let Some(snap) = &latest {
            dur.snapshot_seq.store(snap.seq, Ordering::Release);
            dur.last_snapshot_offset
                .store(snap.journal_offset, Ordering::Release);
            report.snapshot_seq = Some(snap.seq);
            for (idx, slot) in snap.slots.iter().enumerate() {
                match &slot.job {
                    // Vacant slots carry state too: their generation
                    // keeps pre-crash stale handles invalid.
                    None => rt.set_slot_gen(idx as u32, slot.gen),
                    Some(job) => {
                        let jrt = rt.deploy_into_slot(idx as u32, slot.gen, &job.name, registry)?;
                        if job.instances.len() != jrt.instances.len() {
                            return Err(RecoverError::StateMismatch {
                                job: job.name.clone(),
                                instance: job.instances.len().min(jrt.instances.len()),
                            });
                        }
                        for (i, bytes) in job.instances.iter().enumerate() {
                            if !relock(&jrt.instances[i]).state_restore(bytes) {
                                return Err(RecoverError::StateMismatch {
                                    job: job.name.clone(),
                                    instance: i,
                                });
                            }
                        }
                        report.snapshot_jobs += 1;
                    }
                }
            }
        }
        for (_end, rec) in records {
            report.records_replayed += 1;
            match rec {
                JournalRecord::Deploy { slot, gen, name } => {
                    // Idempotent against the snapshot: skip if the slot
                    // already holds this generation (restored above) or
                    // has advanced past it (a later undeploy was also
                    // snapshotted).
                    let state = {
                        let jobs = rt.shared.jobs.read().unwrap_or_else(|p| p.into_inner());
                        jobs.slots
                            .get(slot as usize)
                            .map(|s| (s.gen, s.job.is_some()))
                    };
                    let skip = match state {
                        Some((g, true)) if g == gen => true,
                        Some((g, _)) if g > gen => true,
                        _ => false,
                    };
                    if !skip {
                        rt.deploy_into_slot(slot, gen, &name, registry)?;
                    }
                }
                JournalRecord::Undeploy { slot, gen } => {
                    // A stale handle (slot already advanced — the
                    // undeploy was snapshotted) errors; that is the
                    // idempotent skip.
                    let _ = rt.undeploy_within(JobHandle { slot, gen }, Duration::from_secs(5));
                }
                JournalRecord::Frames(frames) => {
                    let (replayed, stale) = rt.replay_frames(frames);
                    report.frames_replayed += replayed;
                    report.stale_frames += stale;
                }
            }
        }
        dur.active.store(true, Ordering::Release);
        Ok((rt, report))
    }

    /// Recovery helper: force a slot's generation (growing the table if
    /// needed) without occupying it.
    fn set_slot_gen(&self, slot: u32, gen: u32) {
        let mut jobs = self.shared.jobs.write().unwrap_or_else(|p| p.into_inner());
        while jobs.slots.len() <= slot as usize {
            let idx = jobs.slots.len() as u32;
            jobs.free.push(idx);
            jobs.slots.push(JobSlot { gen: 0, job: None });
        }
        jobs.slots[slot as usize].gen = gen;
    }

    /// Recovery twin of [`deploy`](Self::deploy): re-expand `name` from
    /// the registry into a *specific* slot and generation, exactly as
    /// journaled. Shares deploy's expansion, smoothing override and
    /// scheduler reinstatement; differs only in slot placement.
    fn deploy_into_slot(
        &self,
        slot: u32,
        gen: u32,
        name: &str,
        registry: &SpecRegistry,
    ) -> Result<Arc<JobRt>, RecoverError> {
        let (spec, opts) = registry
            .get(name)
            .ok_or_else(|| RecoverError::UnknownSpec(name.to_string()))?;
        let id = JobId(slot);
        let mut exp = ExpandedJob::expand(spec, id, opts).map_err(RecoverError::Expand)?;
        if let Some(alpha) = self.shared.profile_alpha {
            if opts.profile_alpha.is_none() {
                for inst in exp.instances.iter_mut() {
                    inst.converter.set_profile_alpha(alpha);
                }
            }
        }
        self.shared.sched.reinstate_job(id);
        let jrt = Arc::new(JobRt {
            ingests: exp.ingests.clone(),
            name: exp.name.clone(),
            latency_constraint: exp.latency_constraint,
            gen,
            draining: AtomicBool::new(false),
            inflight: AtomicU64::new(0),
            drain_lock: Mutex::new(()),
            drain_cv: Condvar::new(),
            stats: Arc::new(JobStats::new(exp.latency_constraint)),
            subscribers: Mutex::new(Vec::new()),
            instances: exp.instances.into_iter().map(Mutex::new).collect(),
        });
        let mut jobs = self.shared.jobs.write().unwrap_or_else(|p| p.into_inner());
        while jobs.slots.len() <= slot as usize {
            let idx = jobs.slots.len() as u32;
            jobs.free.push(idx);
            jobs.slots.push(JobSlot { gen: 0, job: None });
        }
        jobs.free.retain(|&s| s != slot);
        let entry = &mut jobs.slots[slot as usize];
        entry.gen = gen;
        entry.job = Some(jrt.clone());
        Ok(jrt)
    }

    /// Replay journaled frames through the normal ingest path. Returns
    /// `(replayed, stale)` — stale frames belonged to a job whose slot
    /// generation has since advanced (an undeploy later in the journal),
    /// the replay-time twin of the wire generation check.
    fn replay_frames(&self, frames: Vec<FrameRecord>) -> (usize, usize) {
        let (mut replayed, mut stale) = (0, 0);
        for f in frames {
            let occupant = self
                .shared
                .jobs
                .read()
                .unwrap_or_else(|p| p.into_inner())
                .occupant(f.slot)
                .cloned();
            let Some(jrt) = occupant else {
                stale += 1;
                continue;
            };
            if f.gen != jrt.gen {
                stale += 1;
                continue;
            }
            let _ingress = IngressGuard::new(&jrt);
            if jrt.draining.load(Ordering::SeqCst) {
                stale += 1;
                continue;
            }
            let slot = f.slot;
            let ingest_idx = jrt.ingests[f.source as usize % jrt.ingests.len()];
            let batch = f.into_batch(self.shared.now());
            let mut outbound = Vec::new();
            self.shared
                .route_ingest(&jrt, slot, ingest_idx, vec![batch], &mut outbound);
            jrt.inflight
                .fetch_add(outbound.len() as u64, Ordering::AcqRel);
            self.shared.submit_batch(outbound);
            replayed += 1;
        }
        (replayed, stale)
    }

    /// Stop all workers and join them. Pending messages are dropped.
    pub fn shutdown(mut self) {
        self.stop_workers();
    }

    fn stop_workers(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        // Wake the controller out of its tick sleep. Taking the lock
        // before notifying closes the race against a controller that
        // checked `shutdown` but has not yet started waiting.
        drop(relock(&self.shared.ctl_lock));
        self.shared.ctl_cv.notify_all();
        self.shared.sched.notify_all();
        if let Some(ctl) = self.controller.take() {
            let _ = ctl.join();
        }
        let handles: Vec<_> = relock(&self.workers).drain(..).collect();
        for h in handles {
            let _ = h.join();
        }
    }
}

impl Drop for Runtime {
    fn drop(&mut self) {
        self.stop_workers();
    }
}

/// Spawn worker `id`: pin it (when configured) and run [`worker_loop`].
/// Used both by [`Runtime::start`] for the initial pool and by the
/// elastic controller when it grows the pool — the two paths must agree
/// on naming, pinning and home-shard assignment, so they share this.
fn spawn_worker(shared: &Arc<Shared>, id: usize) -> JoinHandle<()> {
    let sh = shared.clone();
    std::thread::Builder::new()
        .name(format!("cameo-worker-{id}"))
        .spawn(move || {
            // Pin before the first drain so the home shard's arena
            // segments are first-touched (and kept) by this core.
            // Failure is benign: the worker just keeps the default
            // affinity.
            if sh.pin_workers {
                let core = sh
                    .allowed_cores
                    .get(id % sh.allowed_cores.len().max(1))
                    .copied()
                    .unwrap_or(id % sh.cpus);
                if cameo_core::affinity::pin_to_core(core) {
                    sh.pinned.fetch_add(1, Ordering::Relaxed);
                }
            }
            worker_loop(sh, id)
        })
        .expect("spawn worker thread")
}

fn worker_loop(sh: Arc<Shared>, id: usize) {
    let home = id % sh.sched.shard_count();
    sh.live_workers.fetch_add(1, Ordering::SeqCst);
    // Decrement on *every* exit — including an operator UDF panic
    // unwinding through the worker — so `worker_count` never sticks
    // above the number of threads actually running.
    struct LiveWorker(Arc<Shared>);
    impl Drop for LiveWorker {
        fn drop(&mut self) {
            self.0.live_workers.fetch_sub(1, Ordering::SeqCst);
        }
    }
    let _live = LiveWorker(sh.clone());
    loop {
        if sh.shutdown.load(Ordering::Acquire) {
            return;
        }
        // Elastic retirement: workers with the highest ids exit when
        // the controller lowers the target. Checked only between
        // operator leases, so a retiring worker never abandons a
        // half-drained operator; a parked worker notices within one
        // park timeout (the controller also notifies on shrink).
        if id >= sh.target_workers.load(Ordering::SeqCst) {
            return;
        }
        // Acquire the most urgent operator (home shard first, stealing
        // from hotter shards), parking briefly when everything is idle.
        let Some(exec) = sh.sched.acquire(home, sh.now()) else {
            sh.sched.park(home, PARK_TIMEOUT);
            continue;
        };
        // Drain the operator until the scheduler says stop.
        loop {
            let Some((msg, _pri)) = sh.sched.take_message(&exec) else {
                sh.sched.release(exec);
                break;
            };
            process_message(&sh, exec.key(), msg);
            match sh.sched.decide(&exec, sh.now()) {
                Decision::Continue => continue,
                Decision::Swap | Decision::Idle => {
                    let shard = exec.shard();
                    // The released operator may still be runnable (swap
                    // leaves messages behind); wake a parked sibling on
                    // that shard.
                    if sh.sched.release(exec) {
                        sh.sched.notify_shard(shard);
                    }
                    break;
                }
            }
        }
    }
}

/// One elastic controller observation: fold every deployed job's sink
/// statistics and the scheduler's counters into the cumulative totals
/// [`ElasticController::tick`] differentiates.
fn observe(sh: &Arc<Shared>) -> ElasticObservation {
    let (mut outputs, mut misses) = (0u64, 0u64);
    {
        let jobs = sh.jobs.read().unwrap_or_else(|p| p.into_inner());
        for slot in &jobs.slots {
            if let Some(jrt) = &slot.job {
                let snap = jrt.stats.snapshot();
                outputs += snap.outputs;
                misses += snap.outputs - snap.on_time;
            }
        }
    }
    let stats = sh.sched.stats();
    ElasticObservation {
        outputs,
        deadline_misses: misses,
        backlog: sh.sched.len(),
        workers: sh.target_workers.load(Ordering::SeqCst),
        steals: stats.steals,
        acquisitions: stats.operator_acquisitions,
        shard_backlogs: sh.sched.shard_backlogs(),
        journal_dirty_bytes: sh.dur.as_ref().map_or(0, |d| d.dirty_bytes()),
    }
}

/// The elastic controller thread: sample → decide → actuate, once per
/// configured tick, until shutdown.
///
/// The *decisions* live in [`ElasticController`] (pure, deterministic,
/// shared verbatim with the simulator); this loop only gathers the
/// observation and applies the returned actions:
///
/// * `SetWorkers(n)` — grow by spawning ids `cur..n` (handles pushed
///   into the shared pool so shutdown joins them), or shrink by
///   lowering `target_workers` and waking parked workers so the excess
///   ids notice and retire.
/// * `SetStealThreshold` — retune the sharded scheduler's steal slack.
/// * `MigrateHottest` — move the busiest operator off an overloaded
///   shard (a no-op when that operator is currently leased; the
///   controller simply retries on a later tick).
/// * `ReclaimArenas` — take the reclaimed-segment grace token and hold
///   it for one full tick before dropping (freeing), so any in-flight
///   `Mailbox::push` that read a segment base before reclamation
///   completes its write into still-live memory first.
fn controller_loop(sh: Arc<Shared>, cfg: ElasticConfig, pool: Arc<Mutex<Vec<JoinHandle<()>>>>) {
    let tick = Duration::from_micros(cfg.tick.0);
    let mut ctl = ElasticController::new(cfg);
    let mut cur_target = sh.target_workers.load(Ordering::SeqCst);
    let mut grace: Option<ReclaimedSegments<Mail<RtMsg>>> = None;
    loop {
        {
            let held = relock(&sh.ctl_lock);
            if sh.shutdown.load(Ordering::Acquire) {
                return;
            }
            let _ = sh
                .ctl_cv
                .wait_timeout(held, tick)
                .unwrap_or_else(|p| p.into_inner());
        }
        if sh.shutdown.load(Ordering::Acquire) {
            return;
        }
        // The previous tick's reclaimed segments have now been out of
        // the arena for a full tick: every push that could have held a
        // stale base pointer has finished. Free them.
        drop(grace.take());
        let obs = observe(&sh);
        for action in ctl.tick(&obs) {
            match action {
                ElasticAction::SetWorkers(n) => {
                    if n > cur_target {
                        sh.target_workers.store(n, Ordering::SeqCst);
                        let mut handles = relock(&pool);
                        for id in cur_target..n {
                            handles.push(spawn_worker(&sh, id));
                        }
                    } else if n < cur_target {
                        sh.target_workers.store(n, Ordering::SeqCst);
                        // Parked excess workers re-check the target on
                        // wake; running ones at their next lease.
                        sh.sched.notify_all();
                    }
                    cur_target = n;
                }
                ElasticAction::SetStealThreshold(slack) => {
                    sh.sched.set_steal_threshold(slack);
                }
                ElasticAction::MigrateHottest { from, to } => {
                    if let Some((key, _backlog)) = sh.sched.busiest_operator(from) {
                        sh.sched.migrate_operator(key, to);
                    }
                }
                ElasticAction::ReclaimArenas => {
                    let token = sh.sched.reclaim_quiescent();
                    if !token.is_empty() {
                        grace = Some(token);
                    }
                }
                ElasticAction::Snapshot => {
                    // Best-effort: the controller saw quiescence one
                    // observation ago; if traffic resumed since, skip
                    // and let a later quiescent tick retry.
                    if let Err(e) = try_snapshot(&sh, Duration::ZERO) {
                        if !matches!(e, SnapshotError::Busy) {
                            eprintln!("cameo-runtime: elastic snapshot failed: {e}");
                        }
                    }
                }
            }
        }
        *relock(&sh.elastic_telemetry) = ctl.telemetry();
    }
}

/// Attempt a snapshot, polling for a quiescent point for up to `wait`.
///
/// The consistent-cut protocol: take the jobs read lock, then the
/// journal lock (the global jobs → journal order), and verify
/// quiescence — scheduler empty *and* every job's in-flight count zero
/// — while holding both. Ingress appends the journal record while its
/// `IngressGuard` holds the count above zero, so under this check no
/// record at or below the captured offset can have unprocessed effects,
/// and any concurrent ingress past its admission check blocks on the
/// journal lock until after the offset is captured — its record lands
/// strictly above the cut. The state scan runs under the same two
/// locks; the (slow) blob write happens after both are released.
fn try_snapshot(sh: &Arc<Shared>, wait: Duration) -> Result<u64, SnapshotError> {
    let Some(dur) = &sh.dur else {
        return Err(SnapshotError::Inactive);
    };
    let deadline = Instant::now() + wait;
    loop {
        {
            let jobs = sh.jobs.read().unwrap_or_else(|p| p.into_inner());
            let guard = dur.journal.begin();
            let quiescent = sh.sched.is_empty()
                && jobs.slots.iter().all(|s| {
                    s.job
                        .as_ref()
                        .is_none_or(|j| j.inflight.load(Ordering::SeqCst) == 0)
                });
            if quiescent {
                let offset = guard.offset();
                let seq = dur.snapshot_seq.fetch_add(1, Ordering::AcqRel) + 1;
                let mut slots = Vec::with_capacity(jobs.slots.len());
                for s in &jobs.slots {
                    let job = s.job.as_ref().map(|jrt| JobSnapshot {
                        name: jrt.name.clone(),
                        instances: jrt
                            .instances
                            .iter()
                            .map(|m| relock(m).state_snapshot())
                            .collect(),
                    });
                    slots.push(SlotSnapshot { gen: s.gen, job });
                }
                drop(guard);
                drop(jobs);
                durability::snapshot::write_snapshot(dur.journal.dir(), seq, offset, &slots)?;
                // Retain the latest two snapshots; truncate the journal
                // only below the *older* retained offset, so a torn
                // newest snapshot still recovers from the previous one
                // plus a longer journal suffix.
                let (keep, trunc_below) = {
                    let mut retained = relock(&dur.retained);
                    retained.push((seq, offset));
                    while retained.len() > 2 {
                        retained.remove(0);
                    }
                    (
                        retained.iter().map(|&(s, _)| s).collect::<Vec<u64>>(),
                        retained[0].1,
                    )
                };
                durability::snapshot::prune(dur.journal.dir(), &keep)?;
                dur.journal.begin().truncate_before(trunc_below)?;
                dur.last_snapshot_offset.store(offset, Ordering::Release);
                return Ok(seq);
            }
            drop(guard);
            drop(jobs);
        }
        if Instant::now() >= deadline {
            return Err(SnapshotError::Busy);
        }
        std::thread::sleep(Duration::from_micros(500));
    }
}

/// Execute one message on its operator: run the UDF, record the cost,
/// acknowledge upstream, route outputs downstream.
///
/// The message's slot generation is checked against the slot's current
/// occupant first: a mismatch (or a vacant slot) means the message's
/// job was undeployed while it was in flight, and it is dropped — a
/// stale message must never execute against, or fan out into, the
/// slot's new occupant.
fn process_message(sh: &Arc<Shared>, key: cameo_core::ids::OperatorKey, msg: RtMsg) {
    let jrt = {
        let jobs = sh.jobs.read().unwrap_or_else(|p| p.into_inner());
        jobs.occupant(key.job.0).cloned()
    };
    let jrt = match jrt {
        Some(jrt) if jrt.gen == msg.gen => jrt,
        _ => {
            sh.stale_exec_drops.fetch_add(1, Ordering::Relaxed);
            return;
        }
    };
    // This message's inflight decrement, released on *every* exit —
    // including a panicking operator UDF unwinding through here.
    // Without the guard, one UDF panic would strand the job's inflight
    // count above zero forever and every later `undeploy` of the job
    // would stall for its full drain budget. The fan-out increment
    // below still precedes this drop on the normal path (guards drop
    // at scope end), preserving the never-dips-to-zero ordering.
    struct InflightMsg<'a>(&'a JobRt);
    impl Drop for InflightMsg<'_> {
        fn drop(&mut self) {
            self.0.dec_inflight();
        }
    }
    let _inflight = InflightMsg(&jrt);
    let op_idx = key.op as usize;

    let mut outbound: Vec<(usize, RtMsg)> = Vec::new();
    let mut reply: Option<(SenderRef, cameo_core::context::ReplyContext)> = None;
    let mut outputs: Vec<Batch> = Vec::new();
    let is_sink;
    {
        let mut guard = relock(&jrt.instances[op_idx]);
        let inst = &mut *guard;
        is_sink = inst.is_sink;
        let started = sh.now();
        inst.op
            .as_mut()
            .expect("scheduled instance has an operator")
            .on_batch(msg.channel, &msg.batch, started, &mut outputs);
        inst.propagate_watermark(msg.channel, msg.batch.progress.0, &mut outputs);
        let cost = sh.now() - started;
        inst.converter.profile.record_own_cost(cost);
        if let Some(sender) = msg.sender {
            reply = Some((
                sender,
                sh.policy.prepare_reply(&inst.converter, inst.is_sink),
            ));
        }
        if !inst.is_sink {
            let sender_op = op_idx as u32;
            let converter = &mut inst.converter;
            for route in &inst.outs {
                for b in &outputs {
                    let stamp = MessageStamp {
                        progress: b.progress,
                        time: b.time,
                    };
                    let pc = sh
                        .policy
                        .build_at_operator(&msg.pc, stamp, &route.hop, converter);
                    for (target, channel, sub) in route_batch(route, b) {
                        outbound.push((
                            target,
                            RtMsg {
                                channel,
                                batch: sub,
                                pc,
                                sender: Some(SenderRef {
                                    job: key.job.0,
                                    op: sender_op,
                                    edge: route.edge,
                                }),
                                gen: msg.gen,
                            },
                        ));
                    }
                }
            }
        }
    } // instance guard dropped before touching any other instance

    if is_sink {
        let now = sh.now();
        let handle = JobHandle {
            slot: key.job.0,
            gen: jrt.gen,
        };
        for b in outputs {
            jrt.stats.record(now, b.time, b.len());
            // Snapshot the live senders under the lock, then deliver
            // with it released: a slow subscriber (or a channel
            // internals hiccup) can never extend the critical section
            // another sink execution or `subscribe` call is waiting on.
            // Prune-on-delivery survives in two halves — dead liveness
            // tokens are dropped while snapshotting, and any send that
            // fails (receiver gone) triggers a re-lock prune below.
            let senders: Vec<Sender<OutputEvent>> = {
                let mut subs = relock(&jrt.subscribers);
                subs.retain(Subscriber::live);
                subs.iter().map(|s| s.tx.clone()).collect()
            };
            if senders.is_empty() {
                continue;
            }
            // One allocation per output batch, shared across every
            // subscriber — the fan-out clones an Arc, never the tuples.
            let batch = Arc::new(b);
            let latency = now - batch.time;
            let mut any_dead = false;
            for tx in senders {
                let ok = tx
                    .send(OutputEvent {
                        job: handle,
                        batch: batch.clone(),
                        latency,
                        at: now,
                    })
                    .is_ok();
                if ok {
                    jrt.stats.record_delivery();
                } else {
                    any_dead = true;
                }
            }
            if any_dead {
                // A closed channel means its OutputSubscription (and
                // liveness token) is gone; `live()` sees that.
                relock(&jrt.subscribers).retain(Subscriber::live);
            }
        }
    }
    if let Some((sender, rc)) = reply {
        // Replies are intra-job (the sender is an upstream instance of
        // the same dataflow), so the generation-checked `jrt` already
        // is the right table entry — no second lookup, no stale risk.
        // Enforced, not just assumed: a cross-job SenderRef (impossible
        // today, but nothing in the type forbids it) must not index
        // another job's instance vector, so it drops the reply instead.
        debug_assert_eq!(sender.job, key.job.0, "replies never cross jobs");
        if sender.job == key.job.0 {
            let mut inst = relock(&jrt.instances[sender.op as usize]);
            sh.policy
                .process_reply(&mut inst.converter, sender.edge, &rc);
        }
    }
    // Operator fan-out goes out as one batch per shard (single CAS +
    // hint + wake), with nodes from the target shards' arenas. The
    // fan-out is counted in-flight *before* this message's own
    // decrement (the `InflightMsg` guard, dropped at scope end), so the
    // job's inflight count cannot dip to zero while a causal chain is
    // still alive.
    jrt.inflight
        .fetch_add(outbound.len() as u64, Ordering::AcqRel);
    sh.submit_batch(
        outbound
            .into_iter()
            .map(|(target, m)| (cameo_core::ids::OperatorKey::new(key.job, target as u32), m)),
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use cameo_core::time::LogicalTime;
    use cameo_dataflow::queries::AggQueryParams;

    fn tiny_query(name: &str, window: u64) -> JobSpec {
        cameo_dataflow::queries::agg_query(
            &AggQueryParams::new(name, window, Micros::from_millis(500))
                .with_sources(2)
                .with_parallelism(2)
                .with_domain(cameo_core::progress::TimeDomain::IngestionTime),
        )
    }

    #[test]
    fn deploy_ingest_and_collect_outputs() {
        let rt = Runtime::start(RuntimeConfig::default().with_workers(2));
        let job = rt
            .deploy(&tiny_query("t", 10_000), &ExpandOptions::default())
            .unwrap();
        let rx = rt.subscribe(job).unwrap();
        // Two rounds per source: fill window [0,10ms) then cross it.
        for (source, base) in [(0u32, 0u64), (1, 0)] {
            let tuples = (0..50)
                .map(|i| Tuple::new(i, 1, LogicalTime(base + i * 10)))
                .collect();
            rt.ingest(job, source, tuples).unwrap();
        }
        std::thread::sleep(std::time::Duration::from_millis(20));
        for source in [0u32, 1] {
            let tuples = (0..50)
                .map(|i| Tuple::new(i, 1, LogicalTime(50_000 + i)))
                .collect();
            rt.ingest(job, source, tuples).unwrap();
        }
        assert!(rt.drain(std::time::Duration::from_secs(5)), "queue drains");
        // The first window should have fired.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        let mut got = 0usize;
        while std::time::Instant::now() < deadline {
            if let Ok(ev) = rx.recv_timeout(std::time::Duration::from_millis(100)) {
                got += ev.batch.len();
                break;
            }
        }
        assert!(got > 0, "sink produced grouped output");
        let stats = rt.job_stats(job).unwrap();
        assert!(stats.outputs >= 1);
        rt.shutdown();
    }

    #[test]
    fn multiple_jobs_isolated() {
        let rt = Runtime::start(RuntimeConfig::default().with_workers(2));
        let a = rt
            .deploy(&tiny_query("a", 5_000), &ExpandOptions::default())
            .unwrap();
        let b = rt
            .deploy(&tiny_query("b", 5_000), &ExpandOptions::default())
            .unwrap();
        assert_ne!(a, b);
        for job in [a, b] {
            rt.ingest(job, 0, vec![Tuple::new(1, 1, LogicalTime(1_000))])
                .unwrap();
            rt.ingest(job, 1, vec![Tuple::new(2, 1, LogicalTime(1_000))])
                .unwrap();
            rt.ingest(job, 0, vec![Tuple::new(1, 1, LogicalTime(9_000))])
                .unwrap();
            rt.ingest(job, 1, vec![Tuple::new(2, 1, LogicalTime(9_000))])
                .unwrap();
        }
        assert!(rt.drain(std::time::Duration::from_secs(5)));
        rt.shutdown();
    }

    #[test]
    fn shutdown_is_prompt_when_idle() {
        let rt = Runtime::start(RuntimeConfig::default().with_workers(4));
        let started = std::time::Instant::now();
        rt.shutdown();
        assert!(started.elapsed() < std::time::Duration::from_secs(1));
    }

    #[test]
    fn scheduler_stats_accumulate() {
        let rt = Runtime::start(RuntimeConfig::default().with_workers(1));
        let job = rt
            .deploy(&tiny_query("s", 5_000), &ExpandOptions::default())
            .unwrap();
        rt.ingest(job, 0, vec![Tuple::new(1, 1, LogicalTime(1))])
            .unwrap();
        assert!(rt.drain(std::time::Duration::from_secs(5)));
        assert!(rt.scheduler_stats().messages_scheduled > 0);
        rt.shutdown();
    }

    #[test]
    fn zero_worker_runtime_still_constructs() {
        // A queue-only runtime (submissions accumulate, nothing drains)
        // was accepted before the sharding refactor and must stay valid.
        let rt = Runtime::start(RuntimeConfig {
            workers: 0,
            ..Default::default()
        });
        assert_eq!(rt.shard_count(), 1);
        let job = rt
            .deploy(&tiny_query("q", 5_000), &ExpandOptions::default())
            .unwrap();
        rt.ingest(job, 0, vec![Tuple::new(1, 1, LogicalTime(1))])
            .unwrap();
        assert!(rt.queue_len() > 0, "message queued with no one to drain it");
        rt.shutdown();
    }

    #[test]
    fn explicit_shard_count_is_clamped_to_workers() {
        let rt = Runtime::start(RuntimeConfig::default().with_workers(2).with_shards(16));
        assert_eq!(rt.shard_count(), 2, "shards clamp to worker count");
        rt.shutdown();

        let rt = Runtime::start(RuntimeConfig::default().with_workers(4).with_shards(3));
        assert_eq!(rt.shard_count(), 3);
        rt.shutdown();
    }

    #[test]
    fn sharded_runtime_processes_everything() {
        let rt = Runtime::start(
            RuntimeConfig::default()
                .with_workers(4)
                .with_shards(4)
                .with_quantum(Micros(100)),
        );
        let job = rt
            .deploy(&tiny_query("sh", 5_000), &ExpandOptions::default())
            .unwrap();
        let before = rt.job_stats(job).unwrap().outputs;
        assert_eq!(before, 0);
        for round in 0..20u64 {
            for source in [0u32, 1] {
                let tuples = (0..20)
                    .map(|i| Tuple::new(i, 1, LogicalTime(round * 1_000 + i)))
                    .collect();
                rt.ingest(job, source, tuples).unwrap();
            }
        }
        for source in [0u32, 1] {
            rt.ingest(job, source, vec![Tuple::new(0, 1, LogicalTime(90_000))])
                .unwrap();
        }
        assert!(rt.drain(std::time::Duration::from_secs(10)));
        let stats = rt.scheduler_stats();
        assert!(stats.messages_scheduled > 0);
        assert!(
            rt.job_stats(job).unwrap().outputs >= 1,
            "windows fired across shards"
        );
        rt.shutdown();
    }

    #[test]
    fn locked_ingress_runtime_still_processes() {
        // The pre-mailbox ingress path stays available behind the knob
        // and must drain end to end just like the default.
        let rt = Runtime::start(RuntimeConfig::default().with_workers(2).with_mailbox(false));
        let job = rt
            .deploy(&tiny_query("lk", 5_000), &ExpandOptions::default())
            .unwrap();
        for source in [0u32, 1] {
            rt.ingest(job, source, vec![Tuple::new(1, 1, LogicalTime(1_000))])
                .unwrap();
            rt.ingest(job, source, vec![Tuple::new(1, 1, LogicalTime(9_000))])
                .unwrap();
        }
        assert!(rt.drain(std::time::Duration::from_secs(5)));
        assert_eq!(
            rt.scheduler_stats().mailbox_drained,
            0,
            "locked ingress must not touch the mailbox"
        );
        rt.shutdown();
    }

    #[test]
    fn fixed_pool_runtime_has_no_controller() {
        let rt = Runtime::start(RuntimeConfig::default().with_workers(2));
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        while rt.worker_count() < 2 && std::time::Instant::now() < deadline {
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        assert_eq!(rt.worker_count(), 2);
        std::thread::sleep(std::time::Duration::from_millis(30));
        let tel = rt.elastic_telemetry();
        assert_eq!(tel.ticks, 0, "no controller without with_elastic");
        assert_eq!(rt.worker_count(), 2, "fixed pool never resizes");
        rt.shutdown();
    }

    #[test]
    fn elastic_pool_grows_on_misses_and_shrinks_on_quiescence() {
        let rt = Runtime::start(
            RuntimeConfig::default().with_workers(1).with_elastic(
                ElasticConfig::new(1, 4)
                    .with_tick(Micros(2_000))
                    .with_quiescent_ticks(2),
            ),
        );
        // Every output misses a 1us target, so the first loaded tick
        // pushes the miss rate past the high water mark.
        let spec = cameo_dataflow::queries::agg_query(
            &AggQueryParams::new("el", 1_000, Micros(1))
                .with_sources(2)
                .with_parallelism(2)
                .with_domain(cameo_core::progress::TimeDomain::IngestionTime),
        );
        let job = rt.deploy(&spec, &ExpandOptions::default()).unwrap();
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        let mut round = 0u64;
        while rt.elastic_telemetry().grows == 0 {
            assert!(
                std::time::Instant::now() < deadline,
                "controller never grew the pool: {:?}",
                rt.elastic_telemetry()
            );
            // Cross a window per round so sinks keep producing (missed)
            // outputs for the controller to observe.
            for source in [0u32, 1] {
                let tuples = (0..20)
                    .map(|i| Tuple::new(i, 1, LogicalTime(round * 2_000 + i)))
                    .collect();
                rt.ingest(job, source, tuples).unwrap();
            }
            round += 1;
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        let grown = rt.elastic_telemetry();
        assert!(grown.peak_workers >= 2, "pool grew: {grown:?}");
        // Quiescence: stop the load, let the backlog drain, and the
        // controller must shrink back toward the floor and reclaim.
        assert!(rt.drain(std::time::Duration::from_secs(10)));
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        loop {
            let tel = rt.elastic_telemetry();
            if tel.shrinks >= 1 && tel.reclaims >= 1 && rt.worker_count() <= tel.peak_workers {
                break;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "controller never went quiescent: {tel:?}"
            );
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        // Retired workers observe the lowered target within a park
        // timeout; give them a moment, then the live count must sit
        // strictly below the peak.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        while rt.worker_count() >= rt.elastic_telemetry().peak_workers
            && std::time::Instant::now() < deadline
        {
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        assert!(
            rt.worker_count() < rt.elastic_telemetry().peak_workers,
            "excess workers retired (live {}, peak {})",
            rt.worker_count(),
            rt.elastic_telemetry().peak_workers
        );
        rt.shutdown();
    }

    #[test]
    fn drain_batch_cap_runtime_processes_everything() {
        let rt = Runtime::start(
            RuntimeConfig::default()
                .with_workers(2)
                .with_mailbox_drain_batch(2),
        );
        let job = rt
            .deploy(&tiny_query("db", 5_000), &ExpandOptions::default())
            .unwrap();
        for round in 0..10u64 {
            for source in [0u32, 1] {
                let tuples = (0..10)
                    .map(|i| Tuple::new(i, 1, LogicalTime(round * 1_000 + i)))
                    .collect();
                rt.ingest(job, source, tuples).unwrap();
            }
        }
        assert!(rt.drain(std::time::Duration::from_secs(10)));
        let stats = rt.scheduler_stats();
        assert!(stats.mailbox_drained > 0, "ingress went through mailboxes");
        assert_eq!(
            stats.mailbox_drained, stats.messages_scheduled,
            "every scheduled message travelled through a mailbox"
        );
        rt.shutdown();
    }

    #[test]
    fn pinned_runtime_processes_everything() {
        let rt = Runtime::start(
            RuntimeConfig::default()
                .with_workers(2)
                .with_shards(2)
                .with_pinning(true),
        );
        // Probe whether this host can pin the cores the two workers
        // will target: workers now round-robin within the startup
        // affinity mask, so the targets are the first entries of
        // `allowed_cores` (cores inside the mask are pinnable by
        // definition, but probe anyway in a scratch thread).
        let allowed = cameo_core::affinity::allowed_cores();
        let pinnable = cameo_core::affinity::pinning_supported()
            && !allowed.is_empty()
            && (0..2usize).all(|i| {
                let core = allowed[i % allowed.len()];
                std::thread::spawn(move || cameo_core::affinity::pin_to_core(core))
                    .join()
                    .unwrap_or(false)
            });
        if pinnable {
            // The spawn loop pins before the first acquire; give the
            // threads a beat to come up.
            let deadline = std::time::Instant::now() + std::time::Duration::from_secs(2);
            while rt.pinned_workers() < 2 && std::time::Instant::now() < deadline {
                std::thread::sleep(std::time::Duration::from_millis(5));
            }
            assert_eq!(rt.pinned_workers(), 2, "both workers pinned on linux");
        }
        let job = rt
            .deploy(&tiny_query("pin", 5_000), &ExpandOptions::default())
            .unwrap();
        for source in [0u32, 1] {
            rt.ingest(job, source, vec![Tuple::new(1, 1, LogicalTime(1_000))])
                .unwrap();
            rt.ingest(job, source, vec![Tuple::new(1, 1, LogicalTime(9_000))])
                .unwrap();
        }
        assert!(rt.drain(std::time::Duration::from_secs(5)));
        rt.shutdown();
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn pinning_respects_narrowed_affinity_mask() {
        // A runtime started inside a cpuset narrowed to one core must
        // pin every worker onto *that* core (round-robin within the
        // allowed set), not onto `i % cpus` counted from core 0 —
        // which the kernel would reject for every core outside the
        // mask. Narrow a scratch thread's mask and start the runtime
        // from it: the workers inherit the narrowed mask.
        let pinned = std::thread::spawn(|| {
            let allowed = cameo_core::affinity::allowed_cores();
            let Some(&target) = allowed.last() else {
                return None; // mask unreadable: nothing to regress
            };
            if !cameo_core::affinity::pin_to_core(target) {
                return None;
            }
            assert_eq!(
                cameo_core::affinity::allowed_cores(),
                vec![target],
                "pin_to_core narrows the mask to one core"
            );
            let rt = Runtime::start(
                RuntimeConfig::default()
                    .with_workers(2)
                    .with_shards(2)
                    .with_pinning(true),
            );
            let deadline = std::time::Instant::now() + std::time::Duration::from_secs(2);
            while rt.pinned_workers() < 2 && std::time::Instant::now() < deadline {
                std::thread::sleep(std::time::Duration::from_millis(5));
            }
            let pinned = rt.pinned_workers();
            rt.shutdown();
            Some(pinned)
        })
        .join()
        .unwrap();
        if let Some(pinned) = pinned {
            assert_eq!(pinned, 2, "both workers pinned inside the narrowed mask");
        }
    }

    #[test]
    fn ingest_frames_coalesces_into_one_submit_batch() {
        // A 0-worker runtime: nothing drains, so the counters and the
        // queue length observe exactly what one ingest_frames call
        // produced.
        let rt = Runtime::start(RuntimeConfig {
            workers: 0,
            ..Default::default()
        });
        let job = rt
            .deploy(&tiny_query("nf", 5_000), &ExpandOptions::default())
            .unwrap();
        let frames: Vec<IngestFrame> = (0..6u32)
            .map(|i| {
                IngestFrame::addressed(
                    job,
                    i % 2,
                    vec![Tuple::new(i as u64, 1, LogicalTime(1_000 + i as u64))],
                )
            })
            .collect();
        let out = rt.ingest_frames(frames);
        assert_eq!(out.frames, 6);
        assert_eq!(out.dropped, 0);
        assert!(out.messages >= 6, "each frame expands to >= 1 message");
        assert_eq!(rt.queue_len(), out.messages);
        let stats = rt.scheduler_stats();
        assert_eq!(stats.net_batches, 1, "one call = one net batch");
        assert_eq!(stats.frames_coalesced, 6);
        rt.shutdown();
    }

    #[test]
    fn ingest_frames_drops_unknown_jobs_without_panicking() {
        let rt = Runtime::start(RuntimeConfig::default().with_workers(1));
        let job = rt
            .deploy(&tiny_query("uk", 5_000), &ExpandOptions::default())
            .unwrap();
        let out = rt.ingest_frames(vec![
            IngestFrame {
                job: job.slot() + 99,
                gen: job.generation(),
                source: 0,
                tuples: vec![Tuple::new(1, 1, LogicalTime(1))],
            },
            IngestFrame::addressed(job, 0, vec![Tuple::new(2, 1, LogicalTime(2))]),
        ]);
        assert_eq!(out.dropped, 1);
        assert_eq!(out.frames, 1);
        assert!(rt.drain(std::time::Duration::from_secs(5)));
        assert_eq!(rt.scheduler_stats().frames_coalesced, 1);
        rt.shutdown();
    }

    #[test]
    fn ingest_frames_matches_ingest_per_frame() {
        // The coalesced entry point must produce the same processing
        // results as per-frame ingest: same windows, same counts.
        let run = |coalesced: bool| {
            let rt = Runtime::start(RuntimeConfig::default().with_workers(2));
            let job = rt
                .deploy(&tiny_query("eq", 10_000), &ExpandOptions::default())
                .unwrap();
            let mk = |source: u32, base: u64| {
                IngestFrame::addressed(
                    job,
                    source,
                    (0..50)
                        .map(|i| Tuple::new(i, 1, LogicalTime(base + i * 10)))
                        .collect(),
                )
            };
            let frames = vec![mk(0, 0), mk(1, 0), mk(0, 50_000), mk(1, 50_000)];
            if coalesced {
                let out = rt.ingest_frames(frames);
                assert_eq!(out.frames, 4);
            } else {
                for f in frames {
                    rt.ingest(job, f.source, f.tuples).unwrap();
                }
            }
            assert!(rt.drain(std::time::Duration::from_secs(5)));
            std::thread::sleep(std::time::Duration::from_millis(50));
            let outputs = rt.job_stats(job).unwrap().outputs;
            rt.shutdown();
            outputs
        };
        let batched = run(true);
        let per_frame = run(false);
        assert!(batched >= 1, "coalesced ingest fired windows");
        assert_eq!(batched, per_frame, "same windows either way");
    }

    #[test]
    fn unpinned_runtime_reports_zero_pins() {
        let rt = Runtime::start(RuntimeConfig::default().with_workers(2));
        assert_eq!(rt.pinned_workers(), 0);
        rt.shutdown();
    }

    #[test]
    fn profile_alpha_flows_to_deployed_converters() {
        let rt = Runtime::start(
            RuntimeConfig::default()
                .with_workers(1)
                .with_profile_alpha(0.9),
        );
        let job = rt
            .deploy(&tiny_query("al", 5_000), &ExpandOptions::default())
            .unwrap();
        {
            let jobs = rt.shared.jobs.read().unwrap();
            for inst in jobs.get(job).unwrap().instances.iter() {
                assert_eq!(relock(inst).converter.profile.alpha(), 0.9);
            }
        }
        // A job-level choice beats the runtime default.
        let opts = ExpandOptions {
            profile_alpha: Some(0.3),
            ..Default::default()
        };
        let job2 = rt.deploy(&tiny_query("al2", 5_000), &opts).unwrap();
        {
            let jobs = rt.shared.jobs.read().unwrap();
            assert_eq!(
                relock(&jobs.get(job2).unwrap().instances[0])
                    .converter
                    .profile
                    .alpha(),
                0.3
            );
        }
        rt.shutdown();
    }

    #[test]
    fn ingress_recycles_mailbox_nodes() {
        // Steady-state ingest must be served by the arenas, not the
        // heap: reuse counters grow, the fallback counter stays zero.
        let rt = Runtime::start(RuntimeConfig::default().with_workers(2));
        let job = rt
            .deploy(&tiny_query("ar", 5_000), &ExpandOptions::default())
            .unwrap();
        for round in 0..20u64 {
            for source in [0u32, 1] {
                let tuples = (0..10)
                    .map(|i| Tuple::new(i, 1, LogicalTime(round * 1_000 + i)))
                    .collect();
                rt.ingest(job, source, tuples).unwrap();
            }
        }
        assert!(rt.drain(std::time::Duration::from_secs(10)));
        let stats = rt.scheduler_stats();
        assert!(stats.node_reuse_hits > 0, "recycled nodes fed submits");
        assert_eq!(stats.node_alloc_fallback, 0, "no heap fallback");
        rt.shutdown();
    }

    #[test]
    fn panicking_operator_factory_does_not_leak_the_slot() {
        use cameo_dataflow::graph::JobBuilder;
        use cameo_dataflow::operator::OperatorKind;
        let rt = Runtime::start(RuntimeConfig::default().with_workers(1));
        let mut b = JobBuilder::new(
            "boom",
            Micros::from_millis(100),
            cameo_core::progress::TimeDomain::IngestionTime,
        );
        let src = b.ingest("src", 1);
        let s = b.stage(
            "s",
            1,
            OperatorKind::Regular,
            Micros(1),
            |_| -> Box<dyn cameo_dataflow::operator::Operator> { panic!("factory bug") },
        );
        b.connect(src, s, cameo_dataflow::graph::Routing::Forward);
        let bad = b.build().unwrap();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            rt.deploy(&bad, &ExpandOptions::default())
        }));
        assert!(result.is_err(), "factory panic propagates");
        // The reserved slot must have been handed back: the next deploy
        // lands in slot 0 instead of growing the table.
        let ok = rt
            .deploy(&tiny_query("after", 5_000), &ExpandOptions::default())
            .unwrap();
        assert_eq!(ok.slot(), 0, "panicked deploy leaked its slot");
        rt.shutdown();
    }

    #[test]
    fn undeploy_retires_and_rejects_stale_handles() {
        let rt = Runtime::start(RuntimeConfig::default().with_workers(2));
        let job = rt
            .deploy(&tiny_query("u", 5_000), &ExpandOptions::default())
            .unwrap();
        rt.ingest(job, 0, vec![Tuple::new(1, 1, LogicalTime(1_000))])
            .unwrap();
        assert!(rt.drain(std::time::Duration::from_secs(5)));
        rt.undeploy(job).unwrap();
        assert_eq!(rt.queue_len(), 0, "no retired-job messages linger");
        // Every per-job entry point rejects the stale handle.
        assert_eq!(rt.job_stats(job).err(), Some(JobError::Stale));
        assert_eq!(
            rt.ingest(job, 0, vec![Tuple::new(1, 1, LogicalTime(1))])
                .err(),
            Some(JobError::Stale)
        );
        assert!(rt.subscribe(job).is_err());
        assert_eq!(rt.undeploy(job).err(), Some(JobError::Stale));
        rt.shutdown();
    }

    #[test]
    fn slot_reuse_bumps_generation_and_never_misroutes() {
        let rt = Runtime::start(RuntimeConfig::default().with_workers(2));
        let old = rt
            .deploy(&tiny_query("old", 5_000), &ExpandOptions::default())
            .unwrap();
        rt.undeploy(old).unwrap();
        let new = rt
            .deploy(&tiny_query("new", 5_000), &ExpandOptions::default())
            .unwrap();
        assert_eq!(new.slot(), old.slot(), "slot is reused");
        assert_eq!(new.generation(), old.generation() + 1);
        assert_ne!(old, new);
        // The old handle must hit Stale — never the new job's data.
        assert_eq!(rt.job_stats(old).err(), Some(JobError::Stale));
        // The new handle works.
        rt.ingest(new, 0, vec![Tuple::new(1, 1, LogicalTime(1_000))])
            .unwrap();
        rt.ingest(new, 0, vec![Tuple::new(1, 1, LogicalTime(9_000))])
            .unwrap();
        assert!(rt.drain(std::time::Duration::from_secs(5)));
        assert_eq!(rt.job_stats(new).unwrap().outputs, 0); // window still open
        rt.shutdown();
    }

    #[test]
    fn undeploy_purges_queued_work_on_zero_worker_runtime() {
        // No workers: nothing drains, so undeploy's purge must clean the
        // scheduler by itself (the graceful-drain wait is skipped).
        let rt = Runtime::start(RuntimeConfig {
            workers: 0,
            ..Default::default()
        });
        let job = rt
            .deploy(&tiny_query("z", 5_000), &ExpandOptions::default())
            .unwrap();
        for round in 0..5u64 {
            rt.ingest(job, 0, vec![Tuple::new(round, 1, LogicalTime(1 + round))])
                .unwrap();
        }
        let queued = rt.queue_len();
        assert!(queued > 0);
        let purged = rt.undeploy(job).unwrap();
        assert_eq!(purged as usize, queued, "every queued message purged");
        assert_eq!(rt.queue_len(), 0);
        let stats = rt.scheduler_stats();
        assert_eq!(stats.jobs_retired, 1);
        assert_eq!(
            stats.messages_purged + stats.retired_drops,
            purged,
            "purge is visible in scheduler stats"
        );
        rt.shutdown();
    }

    #[test]
    fn draining_job_refuses_ingest_but_serves_stats() {
        let rt = Runtime::start(RuntimeConfig {
            workers: 0,
            ..Default::default()
        });
        let job = rt
            .deploy(&tiny_query("dr", 5_000), &ExpandOptions::default())
            .unwrap();
        // Flip the draining flag directly (undeploy would retire the
        // job before we could observe the window).
        rt.lookup(job)
            .unwrap()
            .draining
            .store(true, Ordering::SeqCst);
        assert_eq!(
            rt.ingest(job, 0, vec![Tuple::new(1, 1, LogicalTime(1))])
                .err(),
            Some(JobError::Draining)
        );
        assert!(rt.job_stats(job).is_ok(), "stats remain readable");
        assert_eq!(rt.undeploy(job).err(), Some(JobError::Draining));
        rt.shutdown();
    }

    #[test]
    fn unknown_slot_is_not_found() {
        let rt = Runtime::start(RuntimeConfig::default().with_workers(1));
        let bogus = JobHandle { slot: 99, gen: 0 };
        assert_eq!(rt.job_stats(bogus).err(), Some(JobError::NotFound));
        rt.shutdown();
    }

    #[test]
    fn dropped_subscribers_are_pruned() {
        let rt = Runtime::start(RuntimeConfig::default().with_workers(1));
        let job = rt
            .deploy(&tiny_query("sub", 5_000), &ExpandOptions::default())
            .unwrap();
        // Subscribe-then-drop N times: the list must not grow
        // unboundedly (each subscribe prunes the dead entries).
        for _ in 0..100 {
            let sub = rt.subscribe(job).unwrap();
            drop(sub);
        }
        let live = rt.subscribe(job).unwrap();
        {
            let jobs = rt.shared.jobs.read().unwrap();
            let n = relock(&jobs.get(job).unwrap().subscribers).len();
            assert!(n <= 2, "dead subscribers accumulate: {n} entries");
        }
        // The surviving subscription still receives outputs (same feed
        // shape as `deploy_ingest_and_collect_outputs`).
        for source in [0u32, 1] {
            let tuples = (0..50)
                .map(|i| Tuple::new(i, 1, LogicalTime(i * 10)))
                .collect();
            rt.ingest(job, source, tuples).unwrap();
        }
        std::thread::sleep(std::time::Duration::from_millis(20));
        for source in [0u32, 1] {
            let tuples = (0..50)
                .map(|i| Tuple::new(i, 1, LogicalTime(50_000 + i)))
                .collect();
            rt.ingest(job, source, tuples).unwrap();
        }
        assert!(rt.drain(std::time::Duration::from_secs(5)));
        assert!(live.recv_timeout(std::time::Duration::from_secs(5)).is_ok());
        rt.shutdown();
    }

    /// Window-crossing feed shape shared by the egress tests: two
    /// sources, one early batch, one far-future batch to close the
    /// window, then a drain.
    fn feed_until_output(rt: &Runtime, job: JobHandle) {
        for source in [0u32, 1] {
            let tuples = (0..50)
                .map(|i| Tuple::new(i, 1, LogicalTime(i * 10)))
                .collect();
            rt.ingest(job, source, tuples).unwrap();
        }
        std::thread::sleep(std::time::Duration::from_millis(20));
        for source in [0u32, 1] {
            let tuples = (0..50)
                .map(|i| Tuple::new(i, 1, LogicalTime(50_000 + i)))
                .collect();
            rt.ingest(job, source, tuples).unwrap();
        }
        assert!(rt.drain(std::time::Duration::from_secs(5)));
    }

    #[test]
    fn sink_batches_are_arc_shared_across_subscribers() {
        let rt = Runtime::start(RuntimeConfig::default().with_workers(1));
        let job = rt
            .deploy(&tiny_query("arc", 5_000), &ExpandOptions::default())
            .unwrap();
        let sub_a = rt.subscribe(job).unwrap();
        let sub_b = rt.subscribe(job).unwrap();
        feed_until_output(&rt, job);
        let ev_a = sub_a
            .recv_timeout(std::time::Duration::from_secs(5))
            .expect("subscriber A receives");
        let ev_b = sub_b
            .recv_timeout(std::time::Duration::from_secs(5))
            .expect("subscriber B receives");
        // Zero deep copies on the sink path: both subscribers hold the
        // *same* batch allocation, not per-subscriber clones.
        assert!(
            Arc::ptr_eq(&ev_a.batch, &ev_b.batch),
            "subscribers must share one Arc'd batch"
        );
        assert_eq!(ev_a.batch.tuples, ev_b.batch.tuples);
        // The delivery counter audits the fan-out: exactly one
        // delivery per (output, subscriber) pair, while `outputs`
        // counts the batch once.
        let stats = rt.job_stats(job).unwrap();
        assert!(stats.outputs >= 1);
        assert_eq!(
            stats.delivered,
            2 * stats.outputs,
            "two subscribers, one delivery each per output"
        );
        rt.shutdown();
    }

    #[test]
    fn slow_subscriber_cannot_block_another_subscribers_delivery() {
        let rt = Runtime::start(RuntimeConfig::default().with_workers(1));
        let job = rt
            .deploy(&tiny_query("slow", 5_000), &ExpandOptions::default())
            .unwrap();
        // `slow` never calls recv: its channel queue only grows. The
        // sink path must still deliver to `live` promptly — sends
        // happen outside the subscribers mutex, so one subscriber's
        // backlog cannot serialize (or block) another's delivery.
        let slow = rt.subscribe(job).unwrap();
        let live = rt.subscribe(job).unwrap();
        feed_until_output(&rt, job);
        let ev = live
            .recv_timeout(std::time::Duration::from_secs(5))
            .expect("live subscriber delivered despite a stalled peer");
        assert!(!ev.batch.is_empty());
        // The stalled subscriber was never pruned (it is alive, just
        // slow) and its backlog is intact.
        let stats = rt.job_stats(job).unwrap();
        assert_eq!(stats.delivered, 2 * stats.outputs);
        drop(slow);
        rt.shutdown();
    }

    #[test]
    fn deploy_rejects_jobs_without_ingests() {
        use cameo_dataflow::graph::StageSpec;
        use cameo_dataflow::operator::OperatorKind;
        use cameo_dataflow::ops::Passthrough;
        let rt = Runtime::start(RuntimeConfig::default().with_workers(1));
        // `JobBuilder::build` validates an ingest stage exists, but the
        // JobSpec fields are public — a hand-assembled spec used to slip
        // through deploy and blow up later as a division-by-zero inside
        // `ingest`. It must be rejected at deploy time with the precise
        // graph error, and the slot it briefly held must be reusable.
        let spec = JobSpec {
            name: "empty".into(),
            latency_constraint: Micros::from_millis(500),
            time_domain: cameo_core::progress::TimeDomain::IngestionTime,
            stages: vec![StageSpec {
                name: "only".into(),
                parallelism: 1,
                kind: OperatorKind::Regular,
                cost_hint: Micros(10),
                factory: Some(Arc::new(|_ctx| Box::new(Passthrough))),
            }],
            edges: vec![],
        };
        assert_eq!(
            rt.deploy(&spec, &ExpandOptions::default()),
            Err(DeployError::Graph(GraphError::NoIngest))
        );
        // The failed deploy must not leak its slot: the next deploy
        // lands in slot 0.
        let ok = rt
            .deploy(&tiny_query("ok", 5_000), &ExpandOptions::default())
            .unwrap();
        assert_eq!(ok.slot(), 0);
        rt.shutdown();
    }
}
