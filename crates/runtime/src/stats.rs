//! Runtime-side job statistics: thread-safe latency recording at sinks.

use cameo_core::stats::Histogram;
use cameo_core::time::{Micros, PhysicalTime};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Snapshot of a job's output statistics.
#[derive(Clone, Debug)]
pub struct JobStatsSnapshot {
    /// Sink batches emitted.
    pub outputs: u64,
    /// Tuples across those batches.
    pub output_tuples: u64,
    /// Subscriber deliveries: one per (output batch, live subscriber)
    /// pair. With N subscribers this is `N × outputs` while `outputs`
    /// (and the single batch allocation behind it) stays put — the
    /// zero-deep-copy audit of the `Arc`-shared egress path.
    pub delivered: u64,
    /// Outputs that met the job's latency constraint.
    pub on_time: u64,
    /// Median output latency.
    pub p50: Micros,
    /// 99th-percentile output latency.
    pub p99: Micros,
    /// 99.9th-percentile output latency — the tail the SLO sweep
    /// cross-checks its coordinated-omission-safe capture against.
    pub p999: Micros,
    /// Worst output latency observed.
    pub max: Micros,
    /// Mean output latency.
    pub mean: Micros,
    /// Exponentially-weighted moving average of output latency
    /// (smoothing 0.2) — the cheap target-vs-actual sensor the elastic
    /// controller tick samples. Unlike the percentiles it weights
    /// recent outputs, so it tracks a load step within a handful of
    /// windows instead of being diluted by the whole history.
    pub ewma: Micros,
}

impl JobStatsSnapshot {
    /// Fraction of outputs that met the latency constraint.
    pub fn success_rate(&self) -> f64 {
        if self.outputs == 0 {
            0.0
        } else {
            self.on_time as f64 / self.outputs as f64
        }
    }
}

/// Accumulates output latencies for one job.
pub struct JobStats {
    constraint: Micros,
    /// Outside the mutex: deliveries happen after the sink path has
    /// released every lock (the send loop runs outside the subscribers
    /// mutex), so the counter must not force one back on.
    delivered: AtomicU64,
    inner: Mutex<Inner>,
}

struct Inner {
    latency: Histogram,
    outputs: u64,
    output_tuples: u64,
    on_time: u64,
    /// Latency EWMA in microseconds (see [`JobStatsSnapshot::ewma`]).
    /// Updated under the mutex the sink path already takes, so the
    /// sensor adds no producer-side atomics whatsoever.
    ewma_us: f64,
}

/// EWMA smoothing factor for the latency sensor.
const EWMA_ALPHA: f64 = 0.2;

impl JobStats {
    /// Empty statistics for a job with latency target `constraint`.
    pub fn new(constraint: Micros) -> Self {
        JobStats {
            constraint,
            delivered: AtomicU64::new(0),
            inner: Mutex::new(Inner {
                latency: Histogram::new(),
                outputs: 0,
                output_tuples: 0,
                on_time: 0,
                ewma_us: 0.0,
            }),
        }
    }

    /// Record one sink output: produced at `produced_at`, closing the
    /// input that arrived at `input_time`, carrying `tuples` tuples.
    pub fn record(&self, produced_at: PhysicalTime, input_time: PhysicalTime, tuples: usize) {
        let latency = produced_at - input_time;
        let mut g = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        g.latency.record(latency);
        if g.outputs == 0 {
            g.ewma_us = latency.0 as f64;
        } else {
            g.ewma_us += EWMA_ALPHA * (latency.0 as f64 - g.ewma_us);
        }
        g.outputs += 1;
        g.output_tuples += tuples as u64;
        if latency <= self.constraint {
            g.on_time += 1;
        }
    }

    /// Count one successful subscriber delivery (an `OutputEvent` send
    /// that landed). Lock-free: the egress send loop runs outside the
    /// subscribers mutex and stays that way.
    pub fn record_delivery(&self) {
        self.delivered.fetch_add(1, Ordering::Relaxed);
    }

    /// A consistent snapshot of the counters and percentiles.
    pub fn snapshot(&self) -> JobStatsSnapshot {
        let g = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        JobStatsSnapshot {
            outputs: g.outputs,
            output_tuples: g.output_tuples,
            delivered: self.delivered.load(Ordering::Relaxed),
            on_time: g.on_time,
            p50: g.latency.median(),
            p99: g.latency.percentile(99.0),
            p999: g.latency.percentile(99.9),
            max: g.latency.max(),
            mean: g.latency.mean(),
            ewma: Micros(g.ewma_us as u64),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_snapshots() {
        let s = JobStats::new(Micros(1_000));
        s.record(PhysicalTime(1_500), PhysicalTime(1_000), 3); // 500us: on time
        s.record(PhysicalTime(9_000), PhysicalTime(1_000), 2); // 8ms: late
        s.record_delivery();
        s.record_delivery();
        s.record_delivery();
        let snap = s.snapshot();
        assert_eq!(snap.outputs, 2);
        assert_eq!(snap.delivered, 3, "deliveries count per subscriber send");
        assert_eq!(snap.output_tuples, 5);
        assert_eq!(snap.on_time, 1);
        assert!((snap.success_rate() - 0.5).abs() < 1e-9);
        assert!(snap.p99 >= snap.p50);
        assert!(snap.p999 >= snap.p99, "p999 must sit at or above p99");
        assert!(snap.max >= snap.p999);
        // EWMA seeded at 500, then 500 + 0.2 * (8000 - 500) = 2000.
        assert_eq!(snap.ewma, Micros(2_000));
    }

    #[test]
    fn ewma_tracks_recent_latency_faster_than_the_mean() {
        let s = JobStats::new(Micros(1_000));
        for _ in 0..100 {
            s.record(PhysicalTime(1_100), PhysicalTime(1_000), 1); // 100us
        }
        for _ in 0..10 {
            s.record(PhysicalTime(11_000), PhysicalTime(1_000), 1); // 10ms step
        }
        let snap = s.snapshot();
        assert!(
            snap.ewma > snap.mean,
            "after a load step the EWMA ({:?}) must lead the all-time mean ({:?})",
            snap.ewma,
            snap.mean
        );
    }

    #[test]
    fn empty_snapshot() {
        let s = JobStats::new(Micros(1));
        let snap = s.snapshot();
        assert_eq!(snap.outputs, 0);
        assert_eq!(snap.success_rate(), 0.0);
    }
}
