//! # cameo-dataflow
//!
//! The streaming dataflow substrate for the Cameo reproduction: events,
//! batches, windows, operators, logical job graphs and their expansion
//! into wired operator instances.
//!
//! The paper runs Trill streaming operators inside the Flare/Orleans
//! actor runtime; this crate plays Trill's role. It owns everything the
//! scheduler treats as "the query": window semantics (slide sizes feed
//! `TRANSFORM`), DAG topology (critical paths feed deadlines) and
//! operator state machines. It knows nothing about *when* operators
//! run — both the real-time runtime (`cameo-runtime`) and the simulator
//! (`cameo-sim`) drive the same [`ExpandedJob`](expand::ExpandedJob).

#![deny(missing_docs)]

pub mod codec;
pub mod event;
pub mod expand;
pub mod graph;
pub mod operator;
pub mod ops;
pub mod queries;
pub mod window;

/// Everything most dataflow users need.
pub mod prelude {
    pub use crate::event::{Batch, Tuple};
    pub use crate::expand::{route_batch, ExpandOptions, ExpandedJob, OperatorInstance, OutRoute};
    pub use crate::graph::{
        EdgeSpec, GraphError, JobBuilder, JobSpec, Routing, StageId, StageSpec,
    };
    pub use crate::operator::{
        InstanceCtx, Operator, OperatorKind, StateSnapshot, WatermarkTracker,
    };
    pub use crate::ops::{
        Aggregation, DistinctCount, FilterOp, FlatMapOp, MapOp, Passthrough, SessionWindow,
        SpinMap, TopK, WindowAggregate, WindowJoin,
    };
    pub use crate::queries::{
        agg_query, ipq1, ipq2, ipq3, ipq4, join_query, AggQueryParams, JoinQueryParams, StageCosts,
    };
    pub use crate::window::WindowSpec;
}
