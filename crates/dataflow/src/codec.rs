//! Little-endian byte codec shared by operator-state snapshots and the
//! runtime's durability journal.
//!
//! The discipline mirrors the v2 wire format (`cameo-runtime::msg`):
//! fixed-width little-endian fields, explicit element counts, no
//! self-describing tags. Writers emit with the `put_*` helpers; readers
//! consume through [`Reader`], whose every accessor is total — a short
//! or malformed buffer yields `None`, never a panic — so snapshot
//! restore and journal replay can reject torn bytes gracefully.

/// Append a `u8`.
pub fn put_u8(out: &mut Vec<u8>, v: u8) {
    out.push(v);
}

/// Append a little-endian `u32`.
pub fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Append a little-endian `u64`.
pub fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Append a little-endian `i64`.
pub fn put_i64(out: &mut Vec<u8>, v: i64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Append a length-prefixed (`u16`) UTF-8 string; truncates past 64 KiB.
pub fn put_str(out: &mut Vec<u8>, s: &str) {
    let bytes = s.as_bytes();
    let n = bytes.len().min(u16::MAX as usize);
    out.extend_from_slice(&(n as u16).to_le_bytes());
    out.extend_from_slice(&bytes[..n]);
}

/// A bounds-checked cursor over snapshot/journal bytes.
#[derive(Clone, Copy, Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// A reader positioned at the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> &'a [u8] {
        &self.buf[self.pos..]
    }

    /// True once every byte has been consumed.
    pub fn is_empty(&self) -> bool {
        self.pos >= self.buf.len()
    }

    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        if end > self.buf.len() {
            return None;
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Some(s)
    }

    /// Read a `u8`.
    pub fn u8(&mut self) -> Option<u8> {
        self.take(1).map(|s| s[0])
    }

    /// Read a little-endian `u32`.
    pub fn u32(&mut self) -> Option<u32> {
        self.take(4)
            .map(|s| u32::from_le_bytes(s.try_into().unwrap()))
    }

    /// Read a little-endian `u64`.
    pub fn u64(&mut self) -> Option<u64> {
        self.take(8)
            .map(|s| u64::from_le_bytes(s.try_into().unwrap()))
    }

    /// Read a little-endian `i64`.
    pub fn i64(&mut self) -> Option<i64> {
        self.take(8)
            .map(|s| i64::from_le_bytes(s.try_into().unwrap()))
    }

    /// Read a `u16`-length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Option<String> {
        let n = self
            .take(2)
            .map(|s| u16::from_le_bytes(s.try_into().unwrap()))?;
        let bytes = self.take(n as usize)?;
        String::from_utf8(bytes.to_vec()).ok()
    }

    /// Read `n` raw bytes.
    pub fn bytes(&mut self, n: usize) -> Option<&'a [u8]> {
        self.take(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_types() {
        let mut buf = Vec::new();
        put_u8(&mut buf, 7);
        put_u32(&mut buf, 0xDEAD_BEEF);
        put_u64(&mut buf, u64::MAX - 1);
        put_i64(&mut buf, -42);
        put_str(&mut buf, "journal");
        let mut r = Reader::new(&buf);
        assert_eq!(r.u8(), Some(7));
        assert_eq!(r.u32(), Some(0xDEAD_BEEF));
        assert_eq!(r.u64(), Some(u64::MAX - 1));
        assert_eq!(r.i64(), Some(-42));
        assert_eq!(r.str().as_deref(), Some("journal"));
        assert!(r.is_empty());
    }

    #[test]
    fn short_reads_are_none_not_panics() {
        let mut r = Reader::new(&[1, 2, 3]);
        assert_eq!(r.u32(), None);
        assert_eq!(r.u8(), Some(1));
        assert_eq!(r.u64(), None);
        assert_eq!(r.bytes(3), None);
        assert_eq!(r.bytes(2), Some(&[2u8, 3][..]));
        assert!(r.is_empty());
        assert_eq!(Reader::new(&[5, 0]).str().as_deref(), None);
        assert_eq!(
            Reader::new(&[2, 0, b'h', b'i']).str().as_deref(),
            Some("hi")
        );
    }
}
