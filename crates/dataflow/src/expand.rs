//! Job expansion: turning a stage-level [`JobSpec`]
//! into operator *instances* with fully wired channels, out-routes, and
//! per-operator converter state.
//!
//! Both execution engines (the real-time runtime and the discrete-event
//! simulator) consume this exact structure, which is what guarantees
//! they schedule the same dataflow with the same contexts.

use crate::event::Batch;
use crate::graph::{GraphError, JobSpec, Routing, StageId};
use crate::operator::{InstanceCtx, Operator, OperatorKind, WatermarkTracker};
use cameo_core::context::ReplyContext;
use cameo_core::ids::{JobId, OperatorKey};
use cameo_core::policy::{ConverterState, HopInfo, TokenBucket};
use cameo_core::time::Micros;
use std::collections::HashMap;

/// Deployment options applied uniformly to a job's converters.
#[derive(Clone, Debug)]
pub struct ExpandOptions {
    /// Query-semantics awareness (Fig 15 ablation): when `false`,
    /// deadlines are never extended to window frontiers.
    pub semantics_aware: bool,
    /// Seed per-edge cost/critical-path reports from the stage cost
    /// hints so cold-start scheduling matches steady state. Reply
    /// contexts overwrite the seeds as real profiles arrive.
    pub seed_profiles: bool,
    /// Token allocation per ingest source under the token fair-sharing
    /// policy: (tokens per interval, interval length).
    pub token_rate: Option<(u64, Micros)>,
    /// Cost-profiling EWMA smoothing factor for every converter of the
    /// job (`None` keeps [`cameo_core::profile::DEFAULT_ALPHA`]).
    /// Seeded priors survive the override — only the responsiveness of
    /// subsequent updates changes.
    pub profile_alpha: Option<f64>,
}

impl Default for ExpandOptions {
    fn default() -> Self {
        ExpandOptions {
            semantics_aware: true,
            seed_profiles: true,
            token_rate: None,
            profile_alpha: None,
        }
    }
}

/// One outgoing stage-edge of an instance, with pre-resolved targets.
#[derive(Clone, Debug)]
pub struct OutRoute {
    /// Ordinal of this edge among the sender stage's out-edges — the
    /// profile key that reply contexts update (`HopInfo::edge`).
    pub edge: u32,
    /// How batches fan out across the targets.
    pub routing: Routing,
    /// Slide pair for `TRANSFORM` at this hop.
    pub hop: HopInfo,
    /// `(target instance index within job, channel index at target)`.
    pub targets: Vec<(usize, u32)>,
}

/// One operator instance of an expanded job.
pub struct OperatorInstance {
    /// The instance's scheduler key (job id + global instance index).
    pub key: OperatorKey,
    /// Stage this instance belongs to.
    pub stage: StageId,
    /// The stage's name (diagnostics).
    pub stage_name: String,
    /// Index within the stage.
    pub index: u32,
    /// `None` for ingest instances (events enter there; nothing runs).
    pub op: Option<Box<dyn Operator>>,
    /// Per-operator Cameo context-conversion state.
    pub converter: ConverterState,
    /// Pre-resolved outgoing routes.
    pub outs: Vec<OutRoute>,
    /// For each input channel: `(sender instance index, sender's
    /// out-edge ordinal)` — the reply path.
    pub channel_senders: Vec<(usize, u32)>,
    /// True for instances of the job's sink stage.
    pub is_sink: bool,
    /// Modeled per-message cost inherited from the stage.
    pub cost_hint: Micros,
    /// Regular vs windowed triggering.
    pub kind: OperatorKind,
    /// Input-side stream progress per channel. Regular operators merge
    /// several input channels into each output channel, so their output
    /// progress must be the *minimum* progress over inputs — otherwise
    /// a fast source would advance downstream watermarks past a slow
    /// source's in-flight data (classic watermark propagation).
    input_wm: Option<WatermarkTracker>,
}

impl OperatorInstance {
    /// True for source instances (no operator; events enter here).
    pub fn is_ingest(&self) -> bool {
        self.op.is_none() && !self.is_sink
    }

    /// Number of wired input channels.
    pub fn num_channels(&self) -> usize {
        self.channel_senders.len()
    }

    /// Watermark bookkeeping around one execution of a *regular*
    /// operator: observe the arriving progress, then clamp every output
    /// batch's progress to the input watermark. Windowed operators are
    /// untouched — they already emit watermark-correct window triggers.
    pub fn propagate_watermark(&mut self, channel: u32, in_progress: u64, outs: &mut [Batch]) {
        let Some(wm) = self.input_wm.as_mut() else {
            return;
        };
        let w = wm.observe(channel, in_progress);
        for b in outs.iter_mut() {
            if b.progress.0 > w {
                b.progress = cameo_core::time::LogicalTime(w);
            }
        }
    }

    /// Serializes this instance's durable state: the input-side
    /// watermark (channel count then per-channel progress; count 0 when
    /// the instance tracks none) followed by the operator's own
    /// [`StateSnapshot`](crate::operator::StateSnapshot) bytes.
    pub fn state_snapshot(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match &self.input_wm {
            Some(wm) => {
                crate::codec::put_u32(&mut out, wm.progress().len() as u32);
                for &p in wm.progress() {
                    crate::codec::put_u64(&mut out, p);
                }
            }
            None => crate::codec::put_u32(&mut out, 0),
        }
        if let Some(op) = &self.op {
            op.snapshot_state(&mut out);
        }
        out
    }

    /// Restores state captured by [`state_snapshot`](Self::state_snapshot)
    /// into a freshly expanded instance. Returns false (leaving the
    /// instance untouched where possible) on any shape mismatch.
    pub fn state_restore(&mut self, bytes: &[u8]) -> bool {
        let mut r = crate::codec::Reader::new(bytes);
        let Some(nch) = r.u32() else { return false };
        let expect = self.input_wm.as_ref().map_or(0, |wm| wm.num_channels());
        if nch as usize != expect {
            return false;
        }
        let mut per_channel = Vec::with_capacity(nch as usize);
        for _ in 0..nch {
            let Some(p) = r.u64() else { return false };
            per_channel.push(p);
        }
        let rest = r.remaining();
        match &mut self.op {
            Some(op) => {
                if !op.restore_state(rest) {
                    return false;
                }
            }
            None => {
                if !rest.is_empty() {
                    return false;
                }
            }
        }
        if nch > 0 {
            self.input_wm = Some(WatermarkTracker::from_progress(per_channel));
        }
        true
    }
}

/// A deployed job: all operator instances plus lookup tables.
pub struct ExpandedJob {
    /// The job id the instances are keyed under.
    pub id: JobId,
    /// Job name.
    pub name: String,
    /// End-to-end latency target.
    pub latency_constraint: Micros,
    /// Every operator instance, indexed by `OperatorKey::op`.
    pub instances: Vec<OperatorInstance>,
    /// Instance indices of ingest (source) instances.
    pub ingests: Vec<usize>,
    /// First instance index of each stage.
    pub stage_offsets: Vec<usize>,
}

/// Deterministic key spreader for partition routing.
#[inline]
pub fn partition_hash(key: u64) -> u64 {
    // SplitMix64 finalizer: strong avalanche for sequential keys.
    let mut x = key.wrapping_add(0x9E3779B97F4A7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D049BB133111EB);
    x ^ (x >> 31)
}

/// Split a batch across `route.targets` according to the routing mode.
/// Under `Partition`, *every* target receives a sub-batch (possibly
/// empty) carrying the full progress, so watermarks advance everywhere.
pub fn route_batch(route: &OutRoute, batch: &Batch) -> Vec<(usize, u32, Batch)> {
    route_batch_inner(route, batch)
}

/// Like [`route_batch`], but consumes the batch. With exactly one
/// target every routing mode delivers the whole batch there — `Forward`
/// by definition, `Broadcast` and `Partition` degenerately — so the
/// single-target case (a parallelism-1 stage, the common shape on the
/// ingest hot path) *moves* the batch instead of hashing and copying it
/// tuple by tuple.
pub fn route_batch_owned(route: &OutRoute, batch: Batch) -> Vec<(usize, u32, Batch)> {
    if route.targets.len() == 1 {
        let (t, c) = route.targets[0];
        return vec![(t, c, batch)];
    }
    route_batch_inner(route, &batch)
}

fn route_batch_inner(route: &OutRoute, batch: &Batch) -> Vec<(usize, u32, Batch)> {
    match route.routing {
        Routing::Forward => {
            let (t, c) = route.targets[0];
            vec![(t, c, batch.clone())]
        }
        Routing::Broadcast => route
            .targets
            .iter()
            .map(|&(t, c)| (t, c, batch.clone()))
            .collect(),
        Routing::Partition => {
            let n = route.targets.len();
            let mut parts: Vec<Vec<crate::event::Tuple>> = vec![Vec::new(); n];
            for &t in &batch.tuples {
                parts[(partition_hash(t.key) % n as u64) as usize].push(t);
            }
            route
                .targets
                .iter()
                .zip(parts)
                .map(|(&(t, c), tuples)| {
                    (
                        t,
                        c,
                        Batch::with_progress(tuples, batch.progress, batch.time),
                    )
                })
                .collect()
        }
    }
}

impl ExpandedJob {
    /// Expand `spec` into operator instances for job `id`.
    ///
    /// The spec is re-validated first ([`JobSpec::validate`]): `JobSpec`
    /// fields are public, so a hand-assembled spec that skipped
    /// [`JobBuilder::build`](crate::graph::JobBuilder::build) is
    /// rejected here with the precise [`GraphError`] instead of
    /// panicking (or dividing by zero) somewhere inside an execution
    /// engine. Both engines — `Runtime::deploy` and the simulator —
    /// deploy exclusively through this function, which is what makes
    /// deployment a total, fallible operation end to end.
    pub fn expand(
        spec: &JobSpec,
        id: JobId,
        opts: &ExpandOptions,
    ) -> Result<ExpandedJob, GraphError> {
        spec.validate()?;
        let nstages = spec.stages.len();
        // Global instance index per (stage, index).
        let mut stage_offsets = Vec::with_capacity(nstages);
        let mut total = 0usize;
        for s in &spec.stages {
            stage_offsets.push(total);
            total += s.parallelism as usize;
        }
        let global = |stage: StageId, idx: u32| stage_offsets[stage.0 as usize] + idx as usize;

        // Pass 1: channels at every target instance.
        // channel_senders[t] = ordered [(sender_instance, sender_edge_ordinal)]
        // channel_edges[t]   = ordered [target-side in-edge ordinal] (for InstanceCtx)
        // channel_of[(t, global_edge, sender)] = channel index
        let mut channel_senders: Vec<Vec<(usize, u32)>> = vec![Vec::new(); total];
        let mut channel_edges: Vec<Vec<u32>> = vec![Vec::new(); total];
        let mut channel_of: HashMap<(usize, usize, usize), u32> = HashMap::new();

        // Sender-side out-edge ordinals per stage.
        let mut out_ordinal: HashMap<usize, u32> = HashMap::new(); // global edge idx -> ordinal
        for s in 0..nstages as u32 {
            for (ord, (gidx, _)) in spec.out_edges(StageId(s)).enumerate() {
                out_ordinal.insert(gidx, ord as u32);
            }
        }

        for s in 0..nstages as u32 {
            let sid = StageId(s);
            let tpar = spec.stage(sid).parallelism;
            for (in_ord, (gidx, e)) in spec.in_edges(sid).enumerate() {
                let spar = spec.stage(e.from).parallelism;
                for tinst in 0..tpar {
                    let tglobal = global(sid, tinst);
                    let senders: Vec<u32> = match e.routing {
                        Routing::Forward => (0..spar).filter(|i| i % tpar == tinst).collect(),
                        Routing::Partition | Routing::Broadcast => (0..spar).collect(),
                    };
                    for sinst in senders {
                        let sglobal = global(e.from, sinst);
                        let ch = channel_senders[tglobal].len() as u32;
                        channel_senders[tglobal].push((sglobal, out_ordinal[&gidx]));
                        channel_edges[tglobal].push(in_ord as u32);
                        channel_of.insert((tglobal, gidx, sglobal), ch);
                    }
                }
            }
        }

        // Pass 2: build instances with out-routes and converters.
        let mut instances = Vec::with_capacity(total);
        let mut ingests = Vec::new();
        for (sidx, stage) in spec.stages.iter().enumerate() {
            let sid = StageId(sidx as u32);
            let is_sink = spec.is_sink(sid);
            for inst in 0..stage.parallelism {
                let gidx = global(sid, inst);
                let key = OperatorKey::new(id, gidx as u32);

                // Out routes.
                let mut outs = Vec::new();
                for (gedge, e) in spec.out_edges(sid) {
                    let ord = out_ordinal[&gedge];
                    let tstage = spec.stage(e.to);
                    let targets: Vec<(usize, u32)> = match e.routing {
                        Routing::Forward => {
                            let tinst = inst % tstage.parallelism;
                            let t = global(e.to, tinst);
                            vec![(t, channel_of[&(t, gedge, gidx)])]
                        }
                        Routing::Partition | Routing::Broadcast => (0..tstage.parallelism)
                            .map(|ti| {
                                let t = global(e.to, ti);
                                (t, channel_of[&(t, gedge, gidx)])
                            })
                            .collect(),
                    };
                    outs.push(OutRoute {
                        edge: ord,
                        routing: e.routing,
                        hop: HopInfo {
                            edge: ord,
                            sender_slide: stage.kind.slide(),
                            target_slide: tstage.kind.slide(),
                        },
                        targets,
                    });
                }

                // Converter state.
                let mut converter =
                    ConverterState::new(key, spec.time_domain).with_semantics(opts.semantics_aware);
                if opts.seed_profiles {
                    converter.profile =
                        cameo_core::profile::ProfileState::with_prior(stage.cost_hint);
                    for (gedge, e) in spec.out_edges(sid) {
                        let ord = out_ordinal[&gedge];
                        let tstage = spec.stage(e.to);
                        converter.profile.process_reply(
                            ord,
                            &ReplyContext {
                                cost: tstage.cost_hint,
                                cpath: spec.critical_path_below(e.to),
                                queue_len: 0,
                            },
                        );
                    }
                }
                // After seeding: `with_prior` rebuilds the profile with
                // the default alpha, so the override must come last
                // (it keeps the seeded estimates).
                if let Some(alpha) = opts.profile_alpha {
                    converter.set_profile_alpha(alpha);
                }
                if stage.is_ingest() {
                    if let Some((tokens, interval)) = opts.token_rate {
                        converter = converter.with_tokens(TokenBucket::new(tokens, interval));
                    }
                    ingests.push(gidx);
                }

                // The operator itself.
                let op = stage.factory.as_ref().map(|f| {
                    f(&InstanceCtx {
                        channels: channel_edges[gidx].clone(),
                        instance: inst,
                        parallelism: stage.parallelism,
                    })
                });

                let num_ch = channel_senders[gidx].len();
                let input_wm = (matches!(stage.kind, OperatorKind::Regular)
                    && !stage.is_ingest()
                    && num_ch > 0)
                    .then(|| WatermarkTracker::new(num_ch));
                instances.push(OperatorInstance {
                    key,
                    stage: sid,
                    stage_name: stage.name.clone(),
                    index: inst,
                    op,
                    converter,
                    outs,
                    channel_senders: channel_senders[gidx].clone(),
                    is_sink,
                    cost_hint: stage.cost_hint,
                    kind: stage.kind,
                    input_wm,
                });
            }
        }

        Ok(ExpandedJob {
            id,
            name: spec.name.clone(),
            latency_constraint: spec.latency_constraint,
            instances,
            ingests,
            stage_offsets,
        })
    }

    /// Instance lookup by `OperatorKey::op`.
    pub fn instance(&self, op: u32) -> &OperatorInstance {
        &self.instances[op as usize]
    }

    /// Mutable instance lookup by `OperatorKey::op`.
    pub fn instance_mut(&mut self, op: u32) -> &mut OperatorInstance {
        &mut self.instances[op as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Tuple;
    use crate::graph::JobBuilder;
    use crate::operator::OperatorKind;
    use crate::ops::Passthrough;
    use cameo_core::progress::TimeDomain;
    use cameo_core::time::{LogicalTime, PhysicalTime};
    use cameo_core::transform::Slide;

    fn spec() -> JobSpec {
        let mut b = JobBuilder::new("j", Micros(1_000), TimeDomain::IngestionTime);
        let src = b.ingest("src", 4);
        let parse = b.stage("parse", 2, OperatorKind::Regular, Micros(10), |_| {
            Box::new(Passthrough)
        });
        let agg = b.stage(
            "agg",
            2,
            OperatorKind::Windowed { slide: Slide(100) },
            Micros(20),
            |_| Box::new(Passthrough),
        );
        let merge = b.stage(
            "merge",
            1,
            OperatorKind::Windowed { slide: Slide(100) },
            Micros(30),
            |_| Box::new(Passthrough),
        );
        b.connect(src, parse, Routing::Partition);
        b.connect(parse, agg, Routing::Forward);
        b.connect(agg, merge, Routing::Partition);
        b.build().unwrap()
    }

    #[test]
    fn expansion_counts_and_offsets() {
        let j = ExpandedJob::expand(&spec(), JobId(3), &ExpandOptions::default()).unwrap();
        assert_eq!(j.instances.len(), 4 + 2 + 2 + 1);
        assert_eq!(j.stage_offsets, vec![0, 4, 6, 8]);
        assert_eq!(j.ingests, vec![0, 1, 2, 3]);
        assert_eq!(j.instances[8].stage_name, "merge");
        assert!(j.instances[8].is_sink);
        assert_eq!(j.instances[5].key, OperatorKey::new(JobId(3), 5));
    }

    #[test]
    fn channels_enumerate_senders() {
        let j = ExpandedJob::expand(&spec(), JobId(0), &ExpandOptions::default()).unwrap();
        // Each parse instance receives from all 4 sources (Partition).
        for p in 4..6 {
            assert_eq!(j.instances[p].num_channels(), 4);
        }
        // Each agg instance receives from exactly one parse (Forward, 2->2).
        for a in 6..8 {
            assert_eq!(j.instances[a].num_channels(), 1);
        }
        // Merge receives from both agg instances.
        assert_eq!(j.instances[8].num_channels(), 2);
        assert_eq!(j.instances[8].channel_senders, vec![(6, 0), (7, 0)]);
    }

    #[test]
    fn out_routes_carry_hops() {
        let j = ExpandedJob::expand(&spec(), JobId(0), &ExpandOptions::default()).unwrap();
        // parse -> agg hop: regular sender, windowed target.
        let parse = &j.instances[4];
        assert_eq!(parse.outs.len(), 1);
        assert_eq!(parse.outs[0].hop.sender_slide, Slide::UNIT);
        assert_eq!(parse.outs[0].hop.target_slide, Slide(100));
        // agg -> merge hop: windowed to windowed.
        let agg = &j.instances[6];
        assert_eq!(agg.outs[0].hop.sender_slide, Slide(100));
        // Forward target of parse instance 0 is agg instance 0.
        assert_eq!(parse.outs[0].targets, vec![(6, 0)]);
    }

    #[test]
    fn profiles_seeded_from_hints() {
        let j = ExpandedJob::expand(&spec(), JobId(0), &ExpandOptions::default()).unwrap();
        // Source converter knows parse costs 10 and 20+30 lies below it.
        let src = &j.instances[0];
        let report = src.converter.profile.edge_report(0).unwrap();
        assert_eq!(report.cost, Micros(10));
        assert_eq!(report.cpath, Micros(50));
        // Sink converter: own cost prior 30.
        assert_eq!(j.instances[8].converter.profile.own_cost(), Micros(30));
    }

    #[test]
    fn profile_alpha_option_applies_and_keeps_seeds() {
        let opts = ExpandOptions {
            profile_alpha: Some(0.75),
            ..Default::default()
        };
        let j = ExpandedJob::expand(&spec(), JobId(0), &opts).unwrap();
        for inst in &j.instances {
            assert_eq!(inst.converter.profile.alpha(), 0.75);
        }
        // Seeded priors survive the override.
        assert_eq!(j.instances[8].converter.profile.own_cost(), Micros(30));
        // Default stays at the crate default.
        let d = ExpandedJob::expand(&spec(), JobId(0), &ExpandOptions::default()).unwrap();
        assert_eq!(
            d.instances[0].converter.profile.alpha(),
            cameo_core::profile::DEFAULT_ALPHA
        );
    }

    #[test]
    fn no_seed_option() {
        let opts = ExpandOptions {
            seed_profiles: false,
            ..Default::default()
        };
        let j = ExpandedJob::expand(&spec(), JobId(0), &opts).unwrap();
        assert!(j.instances[0].converter.profile.edge_report(0).is_none());
    }

    #[test]
    fn partition_routes_every_target_with_progress() {
        let j = ExpandedJob::expand(&spec(), JobId(0), &ExpandOptions::default()).unwrap();
        let src = &j.instances[0];
        let batch = Batch::new(
            (0..100).map(|k| Tuple::new(k, 1, LogicalTime(k))).collect(),
            PhysicalTime(5),
        );
        let routed = route_batch(&src.outs[0], &batch);
        assert_eq!(routed.len(), 2, "both parse instances receive a sub-batch");
        let total: usize = routed.iter().map(|(_, _, b)| b.len()).sum();
        assert_eq!(total, 100, "no tuple lost");
        for (_, _, b) in &routed {
            assert_eq!(b.progress, LogicalTime(99), "progress flows everywhere");
            assert!(b.len() > 20, "hash spreads sequential keys");
        }
    }

    #[test]
    fn partition_is_deterministic_by_key() {
        let j = ExpandedJob::expand(&spec(), JobId(0), &ExpandOptions::default()).unwrap();
        let src = &j.instances[0];
        let batch = Batch::new(vec![Tuple::new(42, 1, LogicalTime(0))], PhysicalTime(0));
        let a = route_batch(&src.outs[0], &batch);
        let b = route_batch(&src.outs[0], &batch);
        let pos_a = a.iter().position(|(_, _, b)| !b.is_empty()).unwrap();
        let pos_b = b.iter().position(|(_, _, b)| !b.is_empty()).unwrap();
        assert_eq!(pos_a, pos_b);
    }

    #[test]
    fn broadcast_clones_to_all() {
        let mut b = JobBuilder::new("j", Micros(1), TimeDomain::IngestionTime);
        let src = b.ingest("src", 1);
        let s = b.stage("s", 3, OperatorKind::Regular, Micros(1), |_| {
            Box::new(Passthrough)
        });
        b.connect(src, s, Routing::Broadcast);
        let spec = b.build().unwrap();
        let j = ExpandedJob::expand(&spec, JobId(0), &ExpandOptions::default()).unwrap();
        let batch = Batch::new(vec![Tuple::new(1, 1, LogicalTime(0))], PhysicalTime(0));
        let routed = route_batch(&j.instances[0].outs[0], &batch);
        assert_eq!(routed.len(), 3);
        assert!(routed.iter().all(|(_, _, b)| b.len() == 1));
    }

    #[test]
    fn token_rate_only_on_ingests() {
        let opts = ExpandOptions {
            token_rate: Some((5, Micros::from_secs(1))),
            ..Default::default()
        };
        let j = ExpandedJob::expand(&spec(), JobId(0), &opts).unwrap();
        assert!(j.instances[0].converter.tokens.is_some());
        assert!(j.instances[4].converter.tokens.is_none());
    }

    #[test]
    fn expand_rejects_invalid_specs() {
        use crate::graph::StageSpec;
        use std::sync::Arc;
        // A hand-assembled spec (builder skipped): no ingest stage.
        let no_ingest = JobSpec {
            name: "bad".into(),
            latency_constraint: Micros(1),
            time_domain: TimeDomain::IngestionTime,
            stages: vec![StageSpec {
                name: "only".into(),
                parallelism: 1,
                kind: OperatorKind::Regular,
                cost_hint: Micros(1),
                factory: Some(Arc::new(|_| Box::new(Passthrough))),
            }],
            edges: vec![],
        };
        assert_eq!(
            ExpandedJob::expand(&no_ingest, JobId(0), &ExpandOptions::default())
                .err()
                .unwrap(),
            crate::graph::GraphError::NoIngest
        );
        // Zero parallelism would expand to no instances.
        let mut zero_par = spec();
        zero_par.stages[1].parallelism = 0;
        assert!(matches!(
            ExpandedJob::expand(&zero_par, JobId(0), &ExpandOptions::default()).err().unwrap(),
            crate::graph::GraphError::ZeroParallelism(ref s) if s == "parse"
        ));
        // A valid spec still expands.
        assert!(ExpandedJob::expand(&spec(), JobId(0), &ExpandOptions::default()).is_ok());
    }

    #[test]
    fn partition_hash_spreads() {
        let n = 8u64;
        let mut counts = vec![0u32; n as usize];
        for k in 0..8_000u64 {
            counts[(partition_hash(k) % n) as usize] += 1;
        }
        for &c in &counts {
            assert!((800..1200).contains(&c), "imbalanced: {counts:?}");
        }
    }
}
