//! Logical dataflow jobs: stages, edges, routing, validation and
//! critical-path analysis (§4.2.1 uses the maximum critical-path cost
//! from an operator to any output operator as `C_path`).
//!
//! A job is a DAG of *stages*; each stage expands into `parallelism`
//! operator instances at deployment. *Ingest* stages model the client
//! sources of the paper's testbed: events enter there, priority
//! contexts are built there (`BUILDCXTATSOURCE`), but ingest instances
//! are not scheduled — their work happens at the edge of the system.

use crate::operator::{InstanceCtx, Operator, OperatorKind};
use cameo_core::progress::TimeDomain;
use cameo_core::time::Micros;
use std::fmt;
use std::sync::Arc;

/// Index of a stage within one job.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct StageId(pub u32);

/// How output batches are routed to the instances of the next stage.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Routing {
    /// Split by tuple key hash. Every target instance receives a
    /// sub-batch (possibly empty — progress must flow everywhere).
    Partition,
    /// Instance `i` sends to target instance `i % target_parallelism`.
    Forward,
    /// Every target instance receives the full batch.
    Broadcast,
}

/// Builds one operator per expanded instance of a stage.
pub type OperatorFactory = Arc<dyn Fn(&InstanceCtx) -> Box<dyn Operator> + Send + Sync>;

/// One stage of a job.
pub struct StageSpec {
    /// Stage name (diagnostics and error messages).
    pub name: String,
    /// Operator instances this stage expands into.
    pub parallelism: u32,
    /// Regular vs windowed triggering.
    pub kind: OperatorKind,
    /// Modeled per-message execution cost: seeds profiling and drives
    /// the simulator's cost model.
    pub cost_hint: Micros,
    /// Builds one operator per instance; `None` for ingest stages.
    pub factory: Option<OperatorFactory>,
}

impl fmt::Debug for StageSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("StageSpec")
            .field("name", &self.name)
            .field("parallelism", &self.parallelism)
            .field("kind", &self.kind)
            .field("cost_hint", &self.cost_hint)
            .field("ingest", &self.factory.is_none())
            .finish()
    }
}

impl StageSpec {
    /// True for ingest (source) stages — they have no operator factory.
    pub fn is_ingest(&self) -> bool {
        self.factory.is_none()
    }
}

/// A directed stage-level edge.
#[derive(Clone, Copy, Debug)]
pub struct EdgeSpec {
    /// Sending stage.
    pub from: StageId,
    /// Receiving stage.
    pub to: StageId,
    /// How batches fan out across the receiver's instances.
    pub routing: Routing,
}

/// A validated logical job.
pub struct JobSpec {
    /// Job name.
    pub name: String,
    /// End-to-end latency target (drives deadline scheduling).
    pub latency_constraint: Micros,
    /// Event-time vs ingestion-time semantics.
    pub time_domain: TimeDomain,
    /// The stages, indexed by [`StageId`].
    pub stages: Vec<StageSpec>,
    /// Stage-level edges.
    pub edges: Vec<EdgeSpec>,
}

impl fmt::Debug for JobSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("JobSpec")
            .field("name", &self.name)
            .field("latency_constraint", &self.latency_constraint)
            .field("stages", &self.stages)
            .field("edges", &self.edges)
            .finish()
    }
}

/// Errors produced by [`JobBuilder::build`] and
/// [`JobSpec::validate`] — and therefore by every deployment path
/// (`ExpandedJob::expand`, `Runtime::deploy`): an invalid job graph is
/// rejected with one of these instead of panicking inside the engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// The job defines no stages at all.
    NoStages,
    /// The job has no ingest stage, so no event could ever enter it.
    NoIngest,
    /// A stage declares zero parallelism — it would expand to no
    /// instances (and divide workloads by zero downstream).
    ZeroParallelism(String),
    /// A non-ingest stage is unreachable from every ingest stage.
    Unreachable(String),
    /// An ingest stage has an incoming edge.
    IngestHasInput(String),
    /// The stage graph contains a cycle.
    Cyclic,
    /// An ingest stage has no outgoing edge.
    DeadEnd(String),
    /// No sink (a stage without outgoing edges) exists.
    NoSink,
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::NoStages => write!(f, "job has no stages"),
            GraphError::NoIngest => write!(f, "job has no ingest stage"),
            GraphError::ZeroParallelism(s) => {
                write!(f, "stage '{s}' declares zero parallelism")
            }
            GraphError::Unreachable(s) => write!(f, "stage '{s}' is unreachable from any ingest"),
            GraphError::IngestHasInput(s) => write!(f, "ingest stage '{s}' has an incoming edge"),
            GraphError::Cyclic => write!(f, "stage graph contains a cycle"),
            GraphError::DeadEnd(s) => write!(f, "ingest stage '{s}' has no outgoing edge"),
            GraphError::NoSink => write!(f, "job has no sink stage"),
        }
    }
}

impl std::error::Error for GraphError {}

impl JobSpec {
    /// The stage with the given id.
    pub fn stage(&self, id: StageId) -> &StageSpec {
        &self.stages[id.0 as usize]
    }

    /// `(global edge index, edge)` of every edge leaving `id`.
    pub fn out_edges(&self, id: StageId) -> impl Iterator<Item = (usize, &EdgeSpec)> {
        self.edges
            .iter()
            .enumerate()
            .filter(move |(_, e)| e.from == id)
    }

    /// `(global edge index, edge)` of every edge entering `id`.
    pub fn in_edges(&self, id: StageId) -> impl Iterator<Item = (usize, &EdgeSpec)> {
        self.edges
            .iter()
            .enumerate()
            .filter(move |(_, e)| e.to == id)
    }

    /// True when `id` has no outgoing edges (its outputs leave the job).
    pub fn is_sink(&self, id: StageId) -> bool {
        self.out_edges(id).next().is_none()
    }

    /// Maximum execution cost (sum of `cost_hint`s) over paths from —
    /// and excluding — `id` to any sink: the paper's `C_path` for
    /// messages *produced by* stage `id`... is computed per target, so
    /// this returns the cost strictly below `id`.
    pub fn critical_path_below(&self, id: StageId) -> Micros {
        let mut memo = vec![None; self.stages.len()];
        self.cpath_rec(id, &mut memo)
    }

    fn cpath_rec(&self, id: StageId, memo: &mut Vec<Option<Micros>>) -> Micros {
        if let Some(v) = memo[id.0 as usize] {
            return v;
        }
        let v = self
            .out_edges(id)
            .map(|(_, e)| {
                let child_cost = self.stage(e.to).cost_hint;
                child_cost + self.cpath_rec(e.to, memo)
            })
            .max()
            .unwrap_or(Micros::ZERO);
        memo[id.0 as usize] = Some(v);
        v
    }

    /// Total instance count across all stages.
    pub fn total_instances(&self) -> u32 {
        self.stages.iter().map(|s| s.parallelism).sum()
    }

    /// Validate the spec's structural invariants: at least one ingest
    /// and one sink, no cycles, no unreachable or zero-parallelism
    /// stages, no edges into ingests. [`JobBuilder::build`] runs this
    /// automatically, but `JobSpec`'s fields are public, so every
    /// deployment path ([`ExpandedJob::expand`](crate::expand::ExpandedJob::expand))
    /// re-validates hand-assembled specs instead of trusting them.
    pub fn validate(&self) -> Result<(), GraphError> {
        if self.stages.is_empty() {
            return Err(GraphError::NoStages);
        }
        for s in &self.stages {
            if s.parallelism == 0 {
                return Err(GraphError::ZeroParallelism(s.name.clone()));
            }
        }
        let ingests: Vec<StageId> = (0..self.stages.len() as u32)
            .map(StageId)
            .filter(|&s| self.stage(s).is_ingest())
            .collect();
        if ingests.is_empty() {
            return Err(GraphError::NoIngest);
        }
        for &s in &ingests {
            if self.in_edges(s).next().is_some() {
                return Err(GraphError::IngestHasInput(self.stage(s).name.clone()));
            }
            if self.out_edges(s).next().is_none() {
                return Err(GraphError::DeadEnd(self.stage(s).name.clone()));
            }
        }
        // Cycle check via Kahn's algorithm.
        let n = self.stages.len();
        let mut indeg = vec![0usize; n];
        for e in &self.edges {
            indeg[e.to.0 as usize] += 1;
        }
        let mut queue: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
        let mut seen = 0;
        while let Some(i) = queue.pop() {
            seen += 1;
            for (_, e) in self.out_edges(StageId(i as u32)) {
                indeg[e.to.0 as usize] -= 1;
                if indeg[e.to.0 as usize] == 0 {
                    queue.push(e.to.0 as usize);
                }
            }
        }
        if seen != n {
            return Err(GraphError::Cyclic);
        }
        // Reachability from ingests.
        let mut reach = vec![false; n];
        let mut stack: Vec<u32> = ingests.iter().map(|s| s.0).collect();
        while let Some(i) = stack.pop() {
            if reach[i as usize] {
                continue;
            }
            reach[i as usize] = true;
            for (_, e) in self.out_edges(StageId(i)) {
                stack.push(e.to.0);
            }
        }
        for (i, r) in reach.iter().enumerate() {
            if !r {
                return Err(GraphError::Unreachable(self.stages[i].name.clone()));
            }
        }
        if !(0..n as u32).any(|i| self.is_sink(StageId(i))) {
            return Err(GraphError::NoSink);
        }
        Ok(())
    }
}

/// Fluent builder for [`JobSpec`].
pub struct JobBuilder {
    name: String,
    latency_constraint: Micros,
    time_domain: TimeDomain,
    stages: Vec<StageSpec>,
    edges: Vec<EdgeSpec>,
}

impl JobBuilder {
    /// Start building a job with the given name, latency target and
    /// time domain.
    pub fn new(name: impl Into<String>, latency_constraint: Micros, domain: TimeDomain) -> Self {
        JobBuilder {
            name: name.into(),
            latency_constraint,
            time_domain: domain,
            stages: Vec::new(),
            edges: Vec::new(),
        }
    }

    /// Add an ingest stage: `parallelism` client sources feeding the
    /// job. Not scheduled; events enter the dataflow here.
    pub fn ingest(&mut self, name: impl Into<String>, parallelism: u32) -> StageId {
        assert!(parallelism > 0);
        let id = StageId(self.stages.len() as u32);
        self.stages.push(StageSpec {
            name: name.into(),
            parallelism,
            kind: OperatorKind::Regular,
            cost_hint: Micros::ZERO,
            factory: None,
        });
        id
    }

    /// Add a computing stage.
    pub fn stage<F>(
        &mut self,
        name: impl Into<String>,
        parallelism: u32,
        kind: OperatorKind,
        cost_hint: Micros,
        factory: F,
    ) -> StageId
    where
        F: Fn(&InstanceCtx) -> Box<dyn Operator> + Send + Sync + 'static,
    {
        assert!(parallelism > 0);
        let id = StageId(self.stages.len() as u32);
        self.stages.push(StageSpec {
            name: name.into(),
            parallelism,
            kind,
            cost_hint,
            factory: Some(Arc::new(factory)),
        });
        id
    }

    /// Connect two stages with the given routing.
    pub fn connect(&mut self, from: StageId, to: StageId, routing: Routing) -> &mut Self {
        self.edges.push(EdgeSpec { from, to, routing });
        self
    }

    /// Validate and produce the [`JobSpec`].
    pub fn build(self) -> Result<JobSpec, GraphError> {
        let spec = JobSpec {
            name: self.name,
            latency_constraint: self.latency_constraint,
            time_domain: self.time_domain,
            stages: self.stages,
            edges: self.edges,
        };
        spec.validate()?;
        Ok(spec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::Passthrough;

    fn passthrough() -> impl Fn(&InstanceCtx) -> Box<dyn Operator> + Send + Sync {
        |_ctx| Box::new(Passthrough)
    }

    fn linear_job() -> JobSpec {
        let mut b = JobBuilder::new("j", Micros(1000), TimeDomain::IngestionTime);
        let src = b.ingest("src", 2);
        let a = b.stage("a", 2, OperatorKind::Regular, Micros(10), passthrough());
        let c = b.stage("c", 1, OperatorKind::Regular, Micros(30), passthrough());
        b.connect(src, a, Routing::Forward);
        b.connect(a, c, Routing::Partition);
        b.build().unwrap()
    }

    #[test]
    fn builds_and_validates_linear_job() {
        let j = linear_job();
        assert_eq!(j.stages.len(), 3);
        assert!(j.stage(StageId(0)).is_ingest());
        assert!(j.is_sink(StageId(2)));
        assert!(!j.is_sink(StageId(1)));
        assert_eq!(j.total_instances(), 5);
    }

    #[test]
    fn critical_path_sums_costs() {
        let j = linear_job();
        // Below src: a(10) + c(30) = 40. Below a: c = 30. Below c: 0.
        assert_eq!(j.critical_path_below(StageId(0)), Micros(40));
        assert_eq!(j.critical_path_below(StageId(1)), Micros(30));
        assert_eq!(j.critical_path_below(StageId(2)), Micros::ZERO);
    }

    #[test]
    fn critical_path_takes_max_branch() {
        let mut b = JobBuilder::new("j", Micros(1000), TimeDomain::IngestionTime);
        let src = b.ingest("src", 1);
        let cheap = b.stage("cheap", 1, OperatorKind::Regular, Micros(5), passthrough());
        let dear = b.stage("dear", 1, OperatorKind::Regular, Micros(500), passthrough());
        b.connect(src, cheap, Routing::Forward);
        b.connect(src, dear, Routing::Forward);
        let j = b.build().unwrap();
        assert_eq!(j.critical_path_below(StageId(0)), Micros(500));
    }

    #[test]
    fn rejects_no_ingest() {
        let mut b = JobBuilder::new("j", Micros(1), TimeDomain::IngestionTime);
        let _ = b.stage("a", 1, OperatorKind::Regular, Micros(1), passthrough());
        assert_eq!(b.build().unwrap_err(), GraphError::NoIngest);
    }

    #[test]
    fn rejects_cycle() {
        let mut b = JobBuilder::new("j", Micros(1), TimeDomain::IngestionTime);
        let src = b.ingest("src", 1);
        let a = b.stage("a", 1, OperatorKind::Regular, Micros(1), passthrough());
        let c = b.stage("c", 1, OperatorKind::Regular, Micros(1), passthrough());
        b.connect(src, a, Routing::Forward);
        b.connect(a, c, Routing::Forward);
        b.connect(c, a, Routing::Forward);
        assert_eq!(b.build().unwrap_err(), GraphError::Cyclic);
    }

    #[test]
    fn rejects_unreachable_stage() {
        let mut b = JobBuilder::new("j", Micros(1), TimeDomain::IngestionTime);
        let src = b.ingest("src", 1);
        let a = b.stage("a", 1, OperatorKind::Regular, Micros(1), passthrough());
        let _orphan = b.stage("orphan", 1, OperatorKind::Regular, Micros(1), passthrough());
        b.connect(src, a, Routing::Forward);
        assert!(matches!(b.build().unwrap_err(), GraphError::Unreachable(_)));
    }

    #[test]
    fn rejects_ingest_with_input() {
        let mut b = JobBuilder::new("j", Micros(1), TimeDomain::IngestionTime);
        let src = b.ingest("src", 1);
        let a = b.stage("a", 1, OperatorKind::Regular, Micros(1), passthrough());
        b.connect(src, a, Routing::Forward);
        b.connect(a, src, Routing::Forward);
        let err = b.build().unwrap_err();
        assert!(
            matches!(err, GraphError::IngestHasInput(_) | GraphError::Cyclic),
            "{err:?}"
        );
    }

    #[test]
    fn rejects_dead_end_ingest() {
        let mut b = JobBuilder::new("j", Micros(1), TimeDomain::IngestionTime);
        let _src = b.ingest("src", 1);
        assert!(matches!(
            b.build().unwrap_err(),
            GraphError::DeadEnd(_) | GraphError::NoSink
        ));
    }
}
