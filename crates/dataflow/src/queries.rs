//! Prebuilt query shapes matching the paper's evaluation workloads
//! (§6.1): multi-stage windowed aggregations (IPQ1–IPQ3) and a windowed
//! two-stream join (IPQ4), each parameterized so experiments can scale
//! sources, parallelism, windows and costs.
//!
//! All queries follow the four-stage layout of Fig 7(c):
//!
//! ```text
//! stage 0: parse        (regular,   key extraction)
//! stage 1: local window aggregation (windowed, partial per partition)
//! stage 2: merge        (windowed, combines partials)
//! stage 3: final output (windowed, parallelism 1 — the sink)
//! ```

use crate::graph::{JobBuilder, JobSpec, Routing};
use crate::operator::OperatorKind;
use crate::ops::{Aggregation, MapOp, WindowAggregate, WindowJoin};
use crate::window::WindowSpec;
use cameo_core::progress::TimeDomain;
use cameo_core::time::Micros;

/// Per-stage modeled execution costs (per message).
#[derive(Clone, Copy, Debug)]
pub struct StageCosts {
    /// Parse-stage cost.
    pub parse: Micros,
    /// Local-aggregation-stage cost.
    pub agg: Micros,
    /// Merge-stage cost.
    pub merge: Micros,
    /// Final/sink-stage cost.
    pub final_: Micros,
}

impl Default for StageCosts {
    fn default() -> Self {
        StageCosts {
            parse: Micros(100),
            agg: Micros(150),
            merge: Micros(100),
            final_: Micros(50),
        }
    }
}

impl StageCosts {
    /// Uniformly scale all costs (e.g. to model heavier UDFs).
    pub fn scaled(self, factor: f64) -> Self {
        let s = |m: Micros| Micros((m.0 as f64 * factor) as u64);
        StageCosts {
            parse: s(self.parse),
            agg: s(self.agg),
            merge: s(self.merge),
            final_: s(self.final_),
        }
    }
}

/// Parameters for a windowed aggregation query.
#[derive(Clone, Debug)]
pub struct AggQueryParams {
    /// Job name (shows up in reports and deploy errors).
    pub name: String,
    /// Number of client sources (ingest parallelism).
    pub sources: u32,
    /// Parallelism of the parse and local-aggregation stages.
    pub parallelism: u32,
    /// Merge-stage parallelism.
    pub merge_parallelism: u32,
    /// Window size in logical units (microseconds of stream time).
    pub window: u64,
    /// Slide for sliding windows; `None` = tumbling.
    pub slide: Option<u64>,
    /// End-to-end latency target of the job.
    pub latency_constraint: Micros,
    /// Event-time vs ingestion-time semantics.
    pub domain: TimeDomain,
    /// The window's aggregation function.
    pub aggregation: Aggregation,
    /// Key-space size after parsing (group-by cardinality).
    pub keys: u64,
    /// Modeled per-stage execution costs.
    pub costs: StageCosts,
}

impl AggQueryParams {
    /// A sensibly sized default: tumbling window, 8 sources, parallelism 4.
    pub fn new(name: impl Into<String>, window: u64, latency_constraint: Micros) -> Self {
        AggQueryParams {
            name: name.into(),
            sources: 8,
            parallelism: 4,
            merge_parallelism: 2,
            window,
            slide: None,
            latency_constraint,
            domain: TimeDomain::EventTime,
            aggregation: Aggregation::Sum,
            keys: 64,
            costs: StageCosts::default(),
        }
    }

    /// Make the window sliding with the given slide (must divide the
    /// window size).
    pub fn sliding(mut self, slide: u64) -> Self {
        assert!(slide > 0 && self.window.is_multiple_of(slide));
        self.slide = Some(slide);
        self
    }

    /// Set the number of client sources.
    pub fn with_sources(mut self, n: u32) -> Self {
        self.sources = n;
        self
    }

    /// Set the parse/local-aggregation parallelism.
    pub fn with_parallelism(mut self, p: u32) -> Self {
        self.parallelism = p;
        self
    }

    /// Set the aggregation function.
    pub fn with_aggregation(mut self, a: Aggregation) -> Self {
        self.aggregation = a;
        self
    }

    /// Set the time domain.
    pub fn with_domain(mut self, d: TimeDomain) -> Self {
        self.domain = d;
        self
    }

    /// Set the modeled stage costs.
    pub fn with_costs(mut self, c: StageCosts) -> Self {
        self.costs = c;
        self
    }

    /// Set the group-by key cardinality.
    pub fn with_keys(mut self, k: u64) -> Self {
        self.keys = k;
        self
    }
}

/// The aggregation used when combining partial aggregates.
fn merge_aggregation(a: Aggregation) -> Aggregation {
    match a {
        Aggregation::Sum | Aggregation::Count => Aggregation::Sum,
        Aggregation::Min => Aggregation::Min,
        Aggregation::Max => Aggregation::Max,
        Aggregation::Mean => panic!("Mean cannot be merged across partials; use Sum/Count"),
    }
}

/// Build a multi-stage windowed aggregation job (IPQ1/IPQ2/IPQ3 shape).
pub fn agg_query(p: &AggQueryParams) -> JobSpec {
    let local_spec = match p.slide {
        Some(s) => WindowSpec::sliding(p.window, s),
        None => WindowSpec::tumbling(p.window),
    };
    // Partials of sliding window k carry logical time k·slide + size − 1;
    // a *tumbling* window of the slide size groups exactly one sliding
    // window's partials and triggers the instant that window completes.
    let merge_spec = WindowSpec::tumbling(local_spec.slide().0);
    let merge_agg = merge_aggregation(p.aggregation);

    let mut b = JobBuilder::new(p.name.clone(), p.latency_constraint, p.domain);
    let src = b.ingest("sources", p.sources);

    let keys = p.keys;
    let parse = b.stage(
        "parse",
        p.parallelism,
        OperatorKind::Regular,
        p.costs.parse,
        move |_ctx| {
            Box::new(MapOp::new(move |mut t| {
                t.key %= keys;
                t
            }))
        },
    );

    let local_agg = p.aggregation;
    let local = b.stage(
        "local-agg",
        p.parallelism,
        OperatorKind::Windowed {
            slide: local_spec.slide(),
        },
        p.costs.agg,
        move |ctx| {
            Box::new(WindowAggregate::new(
                local_spec,
                local_agg,
                ctx.num_channels(),
            ))
        },
    );

    let merge = b.stage(
        "merge",
        p.merge_parallelism,
        OperatorKind::Windowed {
            slide: merge_spec.slide(),
        },
        p.costs.merge,
        move |ctx| {
            Box::new(WindowAggregate::new(
                merge_spec,
                merge_agg,
                ctx.num_channels(),
            ))
        },
    );

    let final_ = b.stage(
        "final",
        1,
        OperatorKind::Windowed {
            slide: merge_spec.slide(),
        },
        p.costs.final_,
        move |ctx| {
            Box::new(WindowAggregate::new(
                merge_spec,
                merge_agg,
                ctx.num_channels(),
            ))
        },
    );

    b.connect(src, parse, Routing::Partition);
    b.connect(parse, local, Routing::Forward);
    b.connect(local, merge, Routing::Partition);
    b.connect(merge, final_, Routing::Partition);
    b.build().expect("agg query shape is valid by construction")
}

/// Parameters for the windowed-join query (IPQ4 shape).
#[derive(Clone, Debug)]
pub struct JoinQueryParams {
    /// Job name.
    pub name: String,
    /// Sources per input stream.
    pub sources: u32,
    /// Parse/join parallelism.
    pub parallelism: u32,
    /// Join-window size in logical units.
    pub window: u64,
    /// End-to-end latency target of the job.
    pub latency_constraint: Micros,
    /// Event-time vs ingestion-time semantics.
    pub domain: TimeDomain,
    /// Key-space size after parsing.
    pub keys: u64,
    /// Modeled per-stage execution costs.
    pub costs: StageCosts,
    /// Cost of the join stage itself (typically the heaviest — IPQ4 has
    /// "higher execution time with heavy memory access").
    pub join_cost: Micros,
}

impl JoinQueryParams {
    /// A sensibly sized default: 4 sources per stream, parallelism 4.
    pub fn new(name: impl Into<String>, window: u64, latency_constraint: Micros) -> Self {
        JoinQueryParams {
            name: name.into(),
            sources: 4,
            parallelism: 4,
            window,
            latency_constraint,
            domain: TimeDomain::EventTime,
            keys: 64,
            costs: StageCosts::default(),
            join_cost: Micros(400),
        }
    }
}

/// Build a two-stream windowed join followed by tumbling aggregation.
pub fn join_query(p: &JoinQueryParams) -> JobSpec {
    let win = WindowSpec::tumbling(p.window);
    let mut b = JobBuilder::new(p.name.clone(), p.latency_constraint, p.domain);
    let src_l = b.ingest("sources-left", p.sources);
    let src_r = b.ingest("sources-right", p.sources);

    let keys = p.keys;
    let mk_parse =
        move |_ctx: &crate::operator::InstanceCtx| -> Box<dyn crate::operator::Operator> {
            Box::new(MapOp::new(move |mut t| {
                t.key %= keys;
                t
            }))
        };
    let parse_l = b.stage(
        "parse-left",
        p.parallelism,
        OperatorKind::Regular,
        p.costs.parse,
        mk_parse,
    );
    let parse_r = b.stage(
        "parse-right",
        p.parallelism,
        OperatorKind::Regular,
        p.costs.parse,
        mk_parse,
    );

    let join = b.stage(
        "join",
        p.parallelism,
        OperatorKind::Windowed { slide: win.slide() },
        p.join_cost,
        move |ctx| Box::new(WindowJoin::new(win, ctx, |l, r| l + r)),
    );

    let final_ = b.stage(
        "final",
        1,
        OperatorKind::Windowed { slide: win.slide() },
        p.costs.final_,
        move |ctx| {
            Box::new(WindowAggregate::new(
                win,
                Aggregation::Sum,
                ctx.num_channels(),
            ))
        },
    );

    b.connect(src_l, parse_l, Routing::Partition);
    b.connect(src_r, parse_r, Routing::Partition);
    b.connect(parse_l, join, Routing::Partition);
    b.connect(parse_r, join, Routing::Partition);
    b.connect(join, final_, Routing::Partition);
    b.build()
        .expect("join query shape is valid by construction")
}

/// IPQ1: periodic tumbling-window revenue sum (§6.1).
pub fn ipq1(window: u64, latency: Micros) -> JobSpec {
    agg_query(&AggQueryParams::new("IPQ1", window, latency))
}

/// IPQ2: the same aggregation on a sliding window (half-window slide).
pub fn ipq2(window: u64, latency: Micros) -> JobSpec {
    agg_query(&AggQueryParams::new("IPQ2", window, latency).sliding(window / 2))
}

/// IPQ3: event counts grouped by criterion (larger key space).
pub fn ipq3(window: u64, latency: Micros) -> JobSpec {
    agg_query(
        &AggQueryParams::new("IPQ3", window, latency)
            .with_aggregation(Aggregation::Count)
            .with_keys(256),
    )
}

/// IPQ4: windowed join of two log streams + tumbling aggregation.
pub fn ipq4(window: u64, latency: Micros) -> JobSpec {
    join_query(&JoinQueryParams::new("IPQ4", window, latency))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expand::{ExpandOptions, ExpandedJob};
    use cameo_core::ids::JobId;

    #[test]
    fn ipq1_shape() {
        let j = ipq1(1_000_000, Micros::from_millis(800));
        assert_eq!(j.stages.len(), 5); // sources + 4 computing stages
        assert_eq!(j.stages[4].name, "final");
        assert!(j.is_sink(crate::graph::StageId(4)));
        // The critical path below sources covers all four stages.
        let c = j.critical_path_below(crate::graph::StageId(0));
        assert_eq!(c, Micros(100 + 150 + 100 + 50));
    }

    #[test]
    fn ipq2_uses_sliding_local_and_tumbling_merge() {
        let j = ipq2(1_000_000, Micros::from_millis(800));
        use cameo_core::transform::Slide;
        // Local stage slides by half the window.
        assert_eq!(j.stages[2].kind.slide(), Slide(500_000));
        // Merge stage tumbles at the slide granularity.
        assert_eq!(j.stages[3].kind.slide(), Slide(500_000));
    }

    #[test]
    fn ipq4_has_two_ingests_and_join() {
        let j = ipq4(1_000_000, Micros::from_millis(800));
        let ingests = j.stages.iter().filter(|s| s.is_ingest()).count();
        assert_eq!(ingests, 2);
        assert!(j.stages.iter().any(|s| s.name == "join"));
    }

    #[test]
    fn queries_expand_cleanly() {
        for spec in [
            ipq1(1_000_000, Micros(800_000)),
            ipq2(1_000_000, Micros(800_000)),
            ipq3(1_000_000, Micros(800_000)),
            ipq4(1_000_000, Micros(800_000)),
        ] {
            let j = ExpandedJob::expand(&spec, JobId(1), &ExpandOptions::default()).unwrap();
            assert!(!j.ingests.is_empty());
            assert!(j.instances.iter().any(|i| i.is_sink));
            // Every non-ingest instance has at least one input channel.
            for inst in j.instances.iter().filter(|i| !i.is_ingest()) {
                assert!(inst.num_channels() > 0, "{} lacks inputs", inst.stage_name);
            }
        }
    }

    #[test]
    #[should_panic]
    fn mean_cannot_merge() {
        let _ = agg_query(
            &AggQueryParams::new("bad", 1_000, Micros(1)).with_aggregation(Aggregation::Mean),
        );
    }
}
