//! The operator abstraction executed by both runtimes.
//!
//! An operator is a single-threaded state machine fed one input batch at
//! a time (actor semantics guarantee exclusive access). *Regular*
//! operators may emit output on every invocation; *windowed* operators
//! buffer state and emit only when stream progress completes a window
//! (§4.1's invoked-vs-triggered distinction).

use crate::event::Batch;
use cameo_core::time::PhysicalTime;
use cameo_core::transform::Slide;

/// Whether an operator triggers on every message or on window
/// completion; carries the trigger step used by `TRANSFORM`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OperatorKind {
    /// Triggers on every message (no frontier prediction).
    Regular,
    /// Triggers at window boundaries.
    Windowed {
        /// The window's slide (trigger step) in logical-time units.
        slide: Slide,
    },
}

impl OperatorKind {
    /// The trigger step `TRANSFORM` uses for this operator.
    pub fn slide(&self) -> Slide {
        match *self {
            OperatorKind::Regular => Slide::UNIT,
            OperatorKind::Windowed { slide } => slide,
        }
    }
}

/// Static facts handed to an operator factory when a stage instance is
/// created during job expansion.
#[derive(Clone, Debug)]
pub struct InstanceCtx {
    /// Which stage-level input edge each of this instance's input
    /// channels belongs to (`channels[c] = stage-edge ordinal`). Lets a
    /// join distinguish its left and right inputs, and tells windowed
    /// operators how many channels must pass a frontier before a window
    /// can fire.
    pub channels: Vec<u32>,
    /// This instance's index within its stage.
    pub instance: u32,
    /// The stage's parallelism.
    pub parallelism: u32,
}

impl InstanceCtx {
    /// Number of input channels wired into this instance.
    pub fn num_channels(&self) -> u32 {
        self.channels.len() as u32
    }
}

/// Serialize/restore an operator's accumulated state — the dataflow
/// half of the durability subsystem. Snapshots are taken at quiescent
/// points (no batch in flight), so implementations never race their own
/// `on_batch`; structural parameters (window size, aggregation kind,
/// channel wiring) come from the operator factory at restore time and
/// are *not* serialized — only accumulated data is.
///
/// The default implementation is correct for stateless operators: it
/// snapshots nothing and accepts only an empty byte string back.
pub trait StateSnapshot {
    /// Append this operator's durable state to `out`. Encodings must be
    /// deterministic (sort hash-map iterations) so identical state
    /// produces identical bytes.
    fn snapshot_state(&self, out: &mut Vec<u8>) {
        let _ = out;
    }

    /// Replace accumulated state with a previously snapshotted byte
    /// string. Returns `false` (leaving state unspecified) if the bytes
    /// are malformed or shaped for a differently-configured operator.
    fn restore_state(&mut self, bytes: &[u8]) -> bool {
        bytes.is_empty()
    }
}

/// A dataflow operator. `on_batch` receives the input batch and appends
/// any output batches to `out`; the surrounding engine routes them
/// downstream and attaches priority contexts.
pub trait Operator: Send + StateSnapshot {
    /// Process one batch arriving on `channel` at physical time `now`.
    fn on_batch(&mut self, channel: u32, batch: &Batch, now: PhysicalTime, out: &mut Vec<Batch>);

    /// Buffered tuples (diagnostics / memory accounting).
    fn pending(&self) -> usize {
        0
    }

    /// Operator name for timelines and debugging.
    fn name(&self) -> &'static str {
        "operator"
    }
}

/// Factory for stage instances: builds one operator per instance at
/// deployment time.
pub type OperatorFactory = Box<dyn Fn(&InstanceCtx) -> Box<dyn Operator> + Send + Sync>;

/// Tracks per-channel stream progress and computes the watermark (the
/// minimum progress over all input channels). Windowed operators fire a
/// window once the watermark passes its end: in-order channels make
/// this exact (§4.3 "channel-wise guarantee of in-order processing").
#[derive(Clone, Debug)]
pub struct WatermarkTracker {
    per_channel: Vec<u64>,
}

impl WatermarkTracker {
    /// A tracker over `num_channels` input channels, all at progress 0.
    pub fn new(num_channels: usize) -> Self {
        assert!(num_channels > 0, "watermark tracker needs >= 1 channel");
        WatermarkTracker {
            per_channel: vec![0; num_channels],
        }
    }

    /// Record progress `p` on `channel`; returns the new watermark.
    pub fn observe(&mut self, channel: u32, p: u64) -> u64 {
        let slot = &mut self.per_channel[channel as usize];
        if p > *slot {
            *slot = p;
        }
        self.watermark()
    }

    /// Minimum progress across channels.
    pub fn watermark(&self) -> u64 {
        self.per_channel.iter().copied().min().unwrap_or(0)
    }

    /// Number of tracked channels.
    pub fn num_channels(&self) -> usize {
        self.per_channel.len()
    }

    /// Per-channel progress, for state snapshots.
    pub fn progress(&self) -> &[u64] {
        &self.per_channel
    }

    /// Rebuild a tracker from a snapshotted per-channel progress vector.
    pub fn from_progress(per_channel: Vec<u64>) -> Self {
        assert!(
            !per_channel.is_empty(),
            "watermark tracker needs >= 1 channel"
        );
        WatermarkTracker { per_channel }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn watermark_is_min_over_channels() {
        let mut w = WatermarkTracker::new(3);
        assert_eq!(w.observe(0, 10), 0);
        assert_eq!(w.observe(1, 20), 0);
        assert_eq!(w.observe(2, 5), 5);
        assert_eq!(w.observe(2, 30), 10);
    }

    #[test]
    fn watermark_never_regresses() {
        let mut w = WatermarkTracker::new(1);
        assert_eq!(w.observe(0, 10), 10);
        // Late/duplicate progress does not move the watermark backwards.
        assert_eq!(w.observe(0, 5), 10);
    }

    #[test]
    fn kind_slide() {
        assert_eq!(OperatorKind::Regular.slide(), Slide::UNIT);
        assert_eq!(
            OperatorKind::Windowed { slide: Slide(10) }.slide(),
            Slide(10)
        );
    }

    #[test]
    #[should_panic]
    fn zero_channels_rejected() {
        let _ = WatermarkTracker::new(0);
    }
}
