//! Session windows and two more aggregating operators.
//!
//! [`SessionWindow`] groups a key's tuples into activity sessions
//! closed by a gap of inactivity. Sessions have *data-dependent*
//! trigger times, so the frontier mapping of §4.3 cannot predict them —
//! this is exactly the paper's conservative fallback ("when an event's
//! physical arrival time cannot be inferred from stream progress, we
//! treat windowed operators as regular operators"). Session stages are
//! therefore declared `OperatorKind::Regular`: no deadline extension,
//! correct scheduling.
//!
//! [`TopK`] and [`DistinctCount`] are tumbling-window aggregates with
//! non-decomposable state, common in the paper's dashboard workloads.

use crate::codec::{self, Reader};
use crate::event::{Batch, Tuple};
use crate::operator::{Operator, StateSnapshot, WatermarkTracker};
use crate::window::WindowSpec;
use cameo_core::time::{LogicalTime, PhysicalTime};
use std::collections::{BTreeMap, HashMap, HashSet};

/// Per-key session state.
#[derive(Debug)]
struct Session {
    start: u64,
    last: u64,
    acc: i64,
    count: i64,
    latest_input: PhysicalTime,
}

/// Gap-based session windows: a key's session closes once stream
/// progress passes `last activity + gap`; the emitted tuple carries the
/// session's value sum, stamped at the session's end.
pub struct SessionWindow {
    gap: u64,
    watermark: WatermarkTracker,
    open: HashMap<u64, Session>,
}

impl SessionWindow {
    /// Gap-based session windows: a session closes after `gap` logical
    /// units of silence on its key.
    pub fn new(gap: u64, num_channels: u32) -> Self {
        assert!(gap > 0, "session gap must be positive");
        SessionWindow {
            gap,
            watermark: WatermarkTracker::new(num_channels.max(1) as usize),
            open: HashMap::new(),
        }
    }

    /// Number of sessions currently open.
    pub fn open_sessions(&self) -> usize {
        self.open.len()
    }
}

/// Snapshot prologue shared by the operators here: version byte plus the
/// watermark tracker's per-channel progress.
fn put_wm(out: &mut Vec<u8>, wm: &WatermarkTracker) {
    codec::put_u8(out, 1);
    codec::put_u32(out, wm.progress().len() as u32);
    for &p in wm.progress() {
        codec::put_u64(out, p);
    }
}

/// Counterpart of [`put_wm`]: validates the version and channel count
/// against the live operator before yielding the restored tracker.
fn read_wm(r: &mut Reader<'_>, expect_channels: usize) -> Option<WatermarkTracker> {
    if r.u8()? != 1 {
        return None;
    }
    let nch = r.u32()? as usize;
    if nch != expect_channels {
        return None;
    }
    let mut per_channel = Vec::with_capacity(nch);
    for _ in 0..nch {
        per_channel.push(r.u64()?);
    }
    Some(WatermarkTracker::from_progress(per_channel))
}

impl StateSnapshot for SessionWindow {
    fn snapshot_state(&self, out: &mut Vec<u8>) {
        put_wm(out, &self.watermark);
        codec::put_u32(out, self.open.len() as u32);
        let mut keys: Vec<u64> = self.open.keys().copied().collect();
        keys.sort_unstable();
        for k in keys {
            let s = &self.open[&k];
            codec::put_u64(out, k);
            codec::put_u64(out, s.start);
            codec::put_u64(out, s.last);
            codec::put_i64(out, s.acc);
            codec::put_i64(out, s.count);
            codec::put_u64(out, s.latest_input.0);
        }
    }

    fn restore_state(&mut self, bytes: &[u8]) -> bool {
        let mut r = Reader::new(bytes);
        let Some(wm) = read_wm(&mut r, self.watermark.num_channels()) else {
            return false;
        };
        let Some(nopen) = r.u32() else { return false };
        let mut open = HashMap::with_capacity(nopen as usize);
        for _ in 0..nopen {
            let (Some(k), Some(start), Some(last)) = (r.u64(), r.u64(), r.u64()) else {
                return false;
            };
            let (Some(acc), Some(count), Some(latest)) = (r.i64(), r.i64(), r.u64()) else {
                return false;
            };
            open.insert(
                k,
                Session {
                    start,
                    last,
                    acc,
                    count,
                    latest_input: PhysicalTime(latest),
                },
            );
        }
        if !r.is_empty() {
            return false;
        }
        self.watermark = wm;
        self.open = open;
        true
    }
}

impl Operator for SessionWindow {
    fn on_batch(&mut self, channel: u32, batch: &Batch, _now: PhysicalTime, out: &mut Vec<Batch>) {
        for t in &batch.tuples {
            let s = self.open.entry(t.key).or_insert(Session {
                start: t.time.0,
                last: t.time.0,
                acc: 0,
                count: 0,
                latest_input: PhysicalTime::ZERO,
            });
            // A tuple arriving after the session's gap would have closed
            // it; treat as a new session for the same key (the close is
            // emitted below once the watermark confirms it).
            s.last = s.last.max(t.time.0);
            s.start = s.start.min(t.time.0);
            s.acc = s.acc.wrapping_add(t.value);
            s.count += 1;
            if batch.time > s.latest_input {
                s.latest_input = batch.time;
            }
        }
        let wm = self.watermark.observe(channel, batch.progress.0);
        // Close sessions whose gap has fully elapsed.
        let gap = self.gap;
        let mut closed: Vec<(u64, Session)> = Vec::new();
        self.open.retain(|&k, s| {
            if s.last.saturating_add(gap) <= wm {
                closed.push((
                    k,
                    Session {
                        start: s.start,
                        last: s.last,
                        acc: s.acc,
                        count: s.count,
                        latest_input: s.latest_input,
                    },
                ));
                false
            } else {
                true
            }
        });
        if closed.is_empty() {
            // Still forward progress so downstream watermarks advance.
            out.push(Batch::punctuation(LogicalTime(wm), batch.time));
            return;
        }
        closed.sort_unstable_by_key(|(k, _)| *k);
        let latest = closed
            .iter()
            .map(|(_, s)| s.latest_input)
            .max()
            .unwrap_or(batch.time);
        let tuples: Vec<Tuple> = closed
            .into_iter()
            .map(|(k, s)| Tuple::new(k, s.acc, LogicalTime(s.last)))
            .collect();
        out.push(Batch::with_progress(tuples, LogicalTime(wm), latest));
    }

    fn pending(&self) -> usize {
        self.open.len()
    }

    fn name(&self) -> &'static str {
        "session_window"
    }
}

/// Top-K by per-key value sum within tumbling windows. Emits at most
/// `k` tuples per window, highest sums first (key ascending on ties),
/// each stamped `window_end - 1` like the other window operators.
pub struct TopK {
    window: WindowSpec,
    k: usize,
    watermark: WatermarkTracker,
    state: BTreeMap<u64, (HashMap<u64, i64>, PhysicalTime)>,
}

impl TopK {
    /// Top-`k` keys by value sum per tumbling window.
    pub fn new(window_size: u64, k: usize, num_channels: u32) -> Self {
        assert!(k > 0);
        TopK {
            window: WindowSpec::tumbling(window_size),
            k,
            watermark: WatermarkTracker::new(num_channels.max(1) as usize),
            state: BTreeMap::new(),
        }
    }
}

impl StateSnapshot for TopK {
    fn snapshot_state(&self, out: &mut Vec<u8>) {
        put_wm(out, &self.watermark);
        codec::put_u32(out, self.state.len() as u32);
        for (&wid, (groups, latest)) in &self.state {
            codec::put_u64(out, wid);
            codec::put_u64(out, latest.0);
            codec::put_u32(out, groups.len() as u32);
            let mut keys: Vec<u64> = groups.keys().copied().collect();
            keys.sort_unstable();
            for k in keys {
                codec::put_u64(out, k);
                codec::put_i64(out, groups[&k]);
            }
        }
    }

    fn restore_state(&mut self, bytes: &[u8]) -> bool {
        let mut r = Reader::new(bytes);
        let Some(wm) = read_wm(&mut r, self.watermark.num_channels()) else {
            return false;
        };
        let Some(nwin) = r.u32() else { return false };
        let mut state = BTreeMap::new();
        for _ in 0..nwin {
            let (Some(wid), Some(latest), Some(ngroups)) = (r.u64(), r.u64(), r.u32()) else {
                return false;
            };
            let mut groups = HashMap::with_capacity(ngroups as usize);
            for _ in 0..ngroups {
                let (Some(k), Some(sum)) = (r.u64(), r.i64()) else {
                    return false;
                };
                groups.insert(k, sum);
            }
            state.insert(wid, (groups, PhysicalTime(latest)));
        }
        if !r.is_empty() {
            return false;
        }
        self.watermark = wm;
        self.state = state;
        true
    }
}

impl Operator for TopK {
    fn on_batch(&mut self, channel: u32, batch: &Batch, _now: PhysicalTime, out: &mut Vec<Batch>) {
        for t in &batch.tuples {
            for wid in self.window.windows_for(t.time) {
                let (groups, latest) = self.state.entry(wid).or_default();
                *groups.entry(t.key).or_insert(0) += t.value;
                if batch.time > *latest {
                    *latest = batch.time;
                }
            }
        }
        let wm = self.watermark.observe(channel, batch.progress.0);
        while let Some((&wid, _)) = self.state.iter().next() {
            let end = self.window.window_end(wid);
            if end.0 > wm {
                break;
            }
            let (groups, latest) = self.state.remove(&wid).expect("peeked");
            let mut ranked: Vec<(u64, i64)> = groups.into_iter().collect();
            // Highest sum first; stable on key for determinism.
            ranked.sort_unstable_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
            ranked.truncate(self.k);
            let t = LogicalTime(end.0 - 1);
            let tuples = ranked
                .into_iter()
                .map(|(k, v)| Tuple::new(k, v, t))
                .collect();
            out.push(Batch::with_progress(tuples, end, latest));
        }
    }

    fn pending(&self) -> usize {
        self.state.values().map(|(g, _)| g.len()).sum()
    }

    fn name(&self) -> &'static str {
        "top_k"
    }
}

/// Exact distinct-value count per key within tumbling windows (the
/// "unique users per dashboard tile" shape).
pub struct DistinctCount {
    window: WindowSpec,
    watermark: WatermarkTracker,
    state: BTreeMap<u64, (HashMap<u64, HashSet<i64>>, PhysicalTime)>,
}

impl DistinctCount {
    /// Distinct values per key per tumbling window.
    pub fn new(window_size: u64, num_channels: u32) -> Self {
        DistinctCount {
            window: WindowSpec::tumbling(window_size),
            watermark: WatermarkTracker::new(num_channels.max(1) as usize),
            state: BTreeMap::new(),
        }
    }
}

impl StateSnapshot for DistinctCount {
    fn snapshot_state(&self, out: &mut Vec<u8>) {
        put_wm(out, &self.watermark);
        codec::put_u32(out, self.state.len() as u32);
        for (&wid, (groups, latest)) in &self.state {
            codec::put_u64(out, wid);
            codec::put_u64(out, latest.0);
            codec::put_u32(out, groups.len() as u32);
            let mut keys: Vec<u64> = groups.keys().copied().collect();
            keys.sort_unstable();
            for k in keys {
                let set = &groups[&k];
                codec::put_u64(out, k);
                codec::put_u32(out, set.len() as u32);
                let mut vals: Vec<i64> = set.iter().copied().collect();
                vals.sort_unstable();
                for v in vals {
                    codec::put_i64(out, v);
                }
            }
        }
    }

    fn restore_state(&mut self, bytes: &[u8]) -> bool {
        let mut r = Reader::new(bytes);
        let Some(wm) = read_wm(&mut r, self.watermark.num_channels()) else {
            return false;
        };
        let Some(nwin) = r.u32() else { return false };
        let mut state = BTreeMap::new();
        for _ in 0..nwin {
            let (Some(wid), Some(latest), Some(ngroups)) = (r.u64(), r.u64(), r.u32()) else {
                return false;
            };
            let mut groups = HashMap::with_capacity(ngroups as usize);
            for _ in 0..ngroups {
                let (Some(k), Some(nvals)) = (r.u64(), r.u32()) else {
                    return false;
                };
                let mut set = HashSet::with_capacity(nvals as usize);
                for _ in 0..nvals {
                    let Some(v) = r.i64() else { return false };
                    set.insert(v);
                }
                groups.insert(k, set);
            }
            state.insert(wid, (groups, PhysicalTime(latest)));
        }
        if !r.is_empty() {
            return false;
        }
        self.watermark = wm;
        self.state = state;
        true
    }
}

impl Operator for DistinctCount {
    fn on_batch(&mut self, channel: u32, batch: &Batch, _now: PhysicalTime, out: &mut Vec<Batch>) {
        for t in &batch.tuples {
            for wid in self.window.windows_for(t.time) {
                let (groups, latest) = self.state.entry(wid).or_default();
                groups.entry(t.key).or_default().insert(t.value);
                if batch.time > *latest {
                    *latest = batch.time;
                }
            }
        }
        let wm = self.watermark.observe(channel, batch.progress.0);
        while let Some((&wid, _)) = self.state.iter().next() {
            let end = self.window.window_end(wid);
            if end.0 > wm {
                break;
            }
            let (groups, latest) = self.state.remove(&wid).expect("peeked");
            let t = LogicalTime(end.0 - 1);
            let mut tuples: Vec<Tuple> = groups
                .into_iter()
                .map(|(k, set)| Tuple::new(k, set.len() as i64, t))
                .collect();
            tuples.sort_unstable_by_key(|t| t.key);
            out.push(Batch::with_progress(tuples, end, latest));
        }
    }

    fn pending(&self) -> usize {
        self.state.values().map(|(g, _)| g.len()).sum()
    }

    fn name(&self) -> &'static str {
        "distinct_count"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tuple(k: u64, v: i64, p: u64) -> Tuple {
        Tuple::new(k, v, LogicalTime(p))
    }

    fn feed(op: &mut dyn Operator, tuples: Vec<Tuple>, progress: u64, arrival: u64) -> Vec<Batch> {
        let mut out = Vec::new();
        let b = Batch::with_progress(tuples, LogicalTime(progress), PhysicalTime(arrival));
        op.on_batch(0, &b, PhysicalTime(arrival), &mut out);
        out
    }

    #[test]
    fn session_closes_after_gap() {
        let mut op = SessionWindow::new(10, 1);
        // Activity for key 1 at times 5, 8; progress reaches 12.
        let out = feed(&mut op, vec![tuple(1, 3, 5), tuple(1, 4, 8)], 12, 100);
        // Session's last activity is 8; closes only once progress >= 18.
        assert!(out[0].is_empty(), "session still open at wm=12");
        assert_eq!(op.open_sessions(), 1);
        let out = feed(&mut op, vec![], 18, 200);
        assert_eq!(out[0].tuples, vec![tuple(1, 7, 8)]);
        assert_eq!(op.open_sessions(), 0);
    }

    #[test]
    fn session_extends_with_activity() {
        let mut op = SessionWindow::new(10, 1);
        let _ = feed(&mut op, vec![tuple(1, 1, 5)], 5, 1);
        // New activity at 14 (within gap of 5+10): session extends.
        let _ = feed(&mut op, vec![tuple(1, 1, 14)], 14, 2);
        let out = feed(&mut op, vec![], 20, 3);
        assert!(out[0].is_empty(), "extended session must not close at 20");
        let out = feed(&mut op, vec![], 24, 4);
        assert_eq!(out[0].tuples, vec![tuple(1, 2, 14)]);
    }

    #[test]
    fn sessions_are_per_key() {
        let mut op = SessionWindow::new(10, 1);
        let _ = feed(&mut op, vec![tuple(1, 1, 0), tuple(2, 5, 6)], 6, 1);
        let out = feed(&mut op, vec![], 11, 2);
        // Key 1 (last=0) closes at wm 11 >= 10; key 2 (last=6) stays open.
        assert_eq!(out[0].tuples, vec![tuple(1, 1, 0)]);
        assert_eq!(op.open_sessions(), 1);
    }

    #[test]
    fn session_punctuates_progress() {
        let mut op = SessionWindow::new(100, 1);
        let _ = feed(&mut op, vec![tuple(1, 1, 5)], 5, 1);
        let out = feed(&mut op, vec![], 50, 2);
        assert_eq!(out[0].progress, LogicalTime(50), "progress must flow");
        assert!(out[0].is_empty());
    }

    #[test]
    fn top_k_ranks_and_truncates() {
        let mut op = TopK::new(10, 2, 1);
        let out = feed(
            &mut op,
            vec![
                tuple(1, 5, 1),
                tuple(2, 9, 2),
                tuple(3, 1, 3),
                tuple(1, 2, 4), // key 1 total 7
                tuple(9, 0, 12),
            ],
            12,
            50,
        );
        assert_eq!(out.len(), 1);
        // Ranked: key 2 (9), key 1 (7); key 3 truncated.
        assert_eq!(out[0].tuples, vec![tuple(2, 9, 9), tuple(1, 7, 9)]);
        assert_eq!(out[0].progress, LogicalTime(10));
    }

    #[test]
    fn top_k_tie_breaks_by_key() {
        let mut op = TopK::new(10, 2, 1);
        let out = feed(
            &mut op,
            vec![
                tuple(5, 4, 1),
                tuple(3, 4, 2),
                tuple(8, 4, 3),
                tuple(0, 0, 12),
            ],
            12,
            50,
        );
        assert_eq!(out[0].tuples, vec![tuple(3, 4, 9), tuple(5, 4, 9)]);
    }

    #[test]
    fn distinct_count_dedups_values() {
        let mut op = DistinctCount::new(10, 1);
        let out = feed(
            &mut op,
            vec![
                tuple(1, 100, 1),
                tuple(1, 100, 2), // duplicate value
                tuple(1, 200, 3),
                tuple(2, 7, 4),
                tuple(0, 0, 12),
            ],
            12,
            50,
        );
        let t = &out[0].tuples;
        // Key 0 saw value 0 in window 1 (not fired); window 0: key 1 has
        // 2 distinct values, key 2 has 1.
        assert_eq!(t.len(), 2);
        assert_eq!((t[0].key, t[0].value), (1, 2));
        assert_eq!((t[1].key, t[1].value), (2, 1));
    }

    #[test]
    fn session_snapshot_roundtrip_preserves_open_sessions() {
        let mut op = SessionWindow::new(10, 1);
        let _ = feed(&mut op, vec![tuple(1, 3, 5), tuple(2, 4, 8)], 8, 100);
        let mut bytes = Vec::new();
        op.snapshot_state(&mut bytes);
        let mut restored = SessionWindow::new(10, 1);
        assert!(restored.restore_state(&bytes));
        assert_eq!(restored.open_sessions(), 2);
        // Both copies must close identically from here on.
        let a = feed(&mut op, vec![], 25, 200);
        let b = feed(&mut restored, vec![], 25, 200);
        assert_eq!(a, b);
        assert!(!a[0].is_empty(), "sessions should have closed");
    }

    #[test]
    fn top_k_snapshot_roundtrip_preserves_partial_window() {
        let mut op = TopK::new(10, 2, 1);
        let _ = feed(&mut op, vec![tuple(1, 5, 1), tuple(2, 9, 2)], 2, 50);
        let mut bytes = Vec::new();
        op.snapshot_state(&mut bytes);
        let mut restored = TopK::new(10, 2, 1);
        assert!(restored.restore_state(&bytes));
        let closer = vec![tuple(3, 1, 3), tuple(0, 0, 12)];
        let a = feed(&mut op, closer.clone(), 12, 60);
        let b = feed(&mut restored, closer, 12, 60);
        assert_eq!(a, b);
        assert_eq!(a[0].tuples, vec![tuple(2, 9, 9), tuple(1, 5, 9)]);
        // Re-snapshot of the restored copy must be byte-identical.
        let (mut ra, mut rb) = (Vec::new(), Vec::new());
        op.snapshot_state(&mut ra);
        restored.snapshot_state(&mut rb);
        assert_eq!(ra, rb);
    }

    #[test]
    fn distinct_count_snapshot_roundtrip() {
        let mut op = DistinctCount::new(10, 1);
        let _ = feed(&mut op, vec![tuple(1, 100, 1), tuple(1, 200, 2)], 2, 50);
        let mut bytes = Vec::new();
        op.snapshot_state(&mut bytes);
        let mut restored = DistinctCount::new(10, 1);
        assert!(restored.restore_state(&bytes));
        let closer = vec![tuple(1, 100, 3), tuple(0, 0, 12)];
        let a = feed(&mut op, closer.clone(), 12, 60);
        let b = feed(&mut restored, closer, 12, 60);
        assert_eq!(a, b);
        // Value 100 was already seen pre-snapshot: still 2 distinct.
        assert_eq!(a[0].tuples[0].value, 2);
    }

    #[test]
    fn snapshot_restore_rejects_malformed_bytes() {
        let mut op = SessionWindow::new(10, 1);
        assert!(!op.restore_state(b"garbage"));
        let two_ch = SessionWindow::new(10, 2);
        let mut bytes = Vec::new();
        two_ch.snapshot_state(&mut bytes);
        assert!(!op.restore_state(&bytes), "channel-count mismatch");
        let mut topk = TopK::new(10, 2, 1);
        let mut ok = Vec::new();
        topk.snapshot_state(&mut ok);
        let truncated = &ok[..ok.len() - 1];
        assert!(!topk.restore_state(truncated));
        let mut trailing = ok.clone();
        trailing.push(0xff);
        assert!(!topk.restore_state(&trailing));
        let mut dc = DistinctCount::new(10, 1);
        assert!(!dc.restore_state(&[2]), "unknown version byte");
    }

    #[test]
    fn distinct_count_windows_are_independent() {
        let mut op = DistinctCount::new(10, 1);
        let _ = feed(&mut op, vec![tuple(1, 5, 1)], 1, 1);
        let out = feed(&mut op, vec![tuple(1, 5, 11), tuple(0, 0, 22)], 22, 2);
        // Window 0: {5} -> 1. Window 1: {5} again -> 1 (fresh set).
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].tuples[0].value, 1);
        assert_eq!(out[1].tuples[0].value, 1);
    }
}
