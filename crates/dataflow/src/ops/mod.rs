//! Built-in operators: stateless transforms (map / filter / flat-map /
//! pass-through), keyed windowed aggregation, and windowed stream join.

mod aggregate;
mod join;
mod session;
mod transform;

pub use aggregate::{Aggregation, WindowAggregate};
pub use join::WindowJoin;
pub use session::{DistinctCount, SessionWindow, TopK};
pub use transform::{FilterOp, FlatMapOp, MapOp, Passthrough, SpinMap};
