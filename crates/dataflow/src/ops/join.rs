//! Windowed stream join (IPQ4 in §6.1 "summarizes errors from log
//! events via running a windowed join of two event streams, followed by
//! aggregation on a tumbling window").
//!
//! An equi-join on tuple key within aligned windows: tuples from the
//! left and right inputs are buffered per (window, key); when the
//! watermark passes a window's end, matching pairs are emitted with a
//! combined value. Input sides are identified by the *stage edge* each
//! channel belongs to (edge ordinal 0 = left, 1 = right), which the
//! instance context provides at construction time.

use crate::codec::{self, Reader};
use crate::event::{Batch, Tuple};
use crate::operator::{InstanceCtx, Operator, StateSnapshot, WatermarkTracker};
use crate::window::WindowSpec;
use cameo_core::time::{LogicalTime, PhysicalTime};
use std::collections::{BTreeMap, HashMap};

#[derive(Debug, Default)]
struct SideState {
    by_key: HashMap<u64, Vec<i64>>,
}

#[derive(Debug, Default)]
struct WindowState {
    left: SideState,
    right: SideState,
    latest_input: PhysicalTime,
}

/// Windowed equi-join with a configurable value combiner.
pub struct WindowJoin {
    window: WindowSpec,
    watermark: WatermarkTracker,
    /// `true` at index `c` if channel `c` carries the left input.
    channel_is_left: Vec<bool>,
    combine: fn(i64, i64) -> i64,
    state: BTreeMap<u64, WindowState>,
    fired_below: u64,
    late_drops: u64,
}

impl WindowJoin {
    /// Build from an instance context: channels whose stage edge is the
    /// *first* incoming edge are the left input, all others the right.
    pub fn new(window: WindowSpec, ctx: &InstanceCtx, combine: fn(i64, i64) -> i64) -> Self {
        let first_edge = ctx.channels.first().copied().unwrap_or(0);
        let channel_is_left = ctx.channels.iter().map(|&e| e == first_edge).collect();
        WindowJoin {
            window,
            watermark: WatermarkTracker::new(ctx.channels.len().max(1)),
            channel_is_left,
            combine,
            state: BTreeMap::new(),
            fired_below: 0,
            late_drops: 0,
        }
    }

    /// Tuples dropped because they arrived behind the watermark.
    pub fn late_drops(&self) -> u64 {
        self.late_drops
    }

    fn fire_ready(&mut self, watermark: u64, out: &mut Vec<Batch>) {
        while let Some((&wid, _)) = self.state.iter().next() {
            let end = self.window.window_end(wid);
            if end.0 > watermark {
                break;
            }
            let ws = self.state.remove(&wid).expect("peeked above");
            self.emit(wid, ws, out);
            self.fired_below = self.fired_below.max(wid + 1);
        }
    }

    fn emit(&self, wid: u64, ws: WindowState, out: &mut Vec<Batch>) {
        let end = self.window.window_end(wid);
        let tuple_time = LogicalTime(end.0 - 1);
        let mut tuples = Vec::new();
        let mut keys: Vec<&u64> = ws.left.by_key.keys().collect();
        keys.sort_unstable();
        for &k in keys {
            let Some(rights) = ws.right.by_key.get(&k) else {
                continue;
            };
            let lefts = &ws.left.by_key[&k];
            for &lv in lefts {
                for &rv in rights {
                    tuples.push(Tuple::new(k, (self.combine)(lv, rv), tuple_time));
                }
            }
        }
        out.push(Batch::with_progress(tuples, end, ws.latest_input));
    }
}

fn put_side(out: &mut Vec<u8>, side: &SideState) {
    codec::put_u32(out, side.by_key.len() as u32);
    let mut keys: Vec<u64> = side.by_key.keys().copied().collect();
    keys.sort_unstable();
    for k in keys {
        let vals = &side.by_key[&k];
        codec::put_u64(out, k);
        codec::put_u32(out, vals.len() as u32);
        for &v in vals {
            codec::put_i64(out, v);
        }
    }
}

fn read_side(r: &mut Reader<'_>) -> Option<SideState> {
    let nkeys = r.u32()?;
    let mut by_key = HashMap::with_capacity(nkeys as usize);
    for _ in 0..nkeys {
        let k = r.u64()?;
        let nvals = r.u32()?;
        let mut vals = Vec::with_capacity(nvals as usize);
        for _ in 0..nvals {
            vals.push(r.i64()?);
        }
        by_key.insert(k, vals);
    }
    Some(SideState { by_key })
}

impl StateSnapshot for WindowJoin {
    fn snapshot_state(&self, out: &mut Vec<u8>) {
        codec::put_u8(out, 1); // format version
        codec::put_u32(out, self.watermark.progress().len() as u32);
        for &p in self.watermark.progress() {
            codec::put_u64(out, p);
        }
        codec::put_u64(out, self.fired_below);
        codec::put_u64(out, self.late_drops);
        codec::put_u32(out, self.state.len() as u32);
        for (&wid, ws) in &self.state {
            codec::put_u64(out, wid);
            codec::put_u64(out, ws.latest_input.0);
            put_side(out, &ws.left);
            put_side(out, &ws.right);
        }
    }

    fn restore_state(&mut self, bytes: &[u8]) -> bool {
        let mut r = Reader::new(bytes);
        let Some(1) = r.u8() else { return false };
        let Some(nch) = r.u32() else { return false };
        if nch as usize != self.watermark.num_channels() {
            return false;
        }
        let mut per_channel = Vec::with_capacity(nch as usize);
        for _ in 0..nch {
            let Some(p) = r.u64() else { return false };
            per_channel.push(p);
        }
        let (Some(fired_below), Some(late_drops), Some(nwin)) = (r.u64(), r.u64(), r.u32()) else {
            return false;
        };
        let mut state = BTreeMap::new();
        for _ in 0..nwin {
            let (Some(wid), Some(latest)) = (r.u64(), r.u64()) else {
                return false;
            };
            let (Some(left), Some(right)) = (read_side(&mut r), read_side(&mut r)) else {
                return false;
            };
            state.insert(
                wid,
                WindowState {
                    left,
                    right,
                    latest_input: PhysicalTime(latest),
                },
            );
        }
        if !r.is_empty() {
            return false;
        }
        self.watermark = WatermarkTracker::from_progress(per_channel);
        self.fired_below = fired_below;
        self.late_drops = late_drops;
        self.state = state;
        true
    }
}

impl Operator for WindowJoin {
    fn on_batch(&mut self, channel: u32, batch: &Batch, _now: PhysicalTime, out: &mut Vec<Batch>) {
        let is_left = self
            .channel_is_left
            .get(channel as usize)
            .copied()
            .unwrap_or(true);
        let wm_before = self.watermark.watermark();
        for t in &batch.tuples {
            for wid in self.window.windows_for(t.time) {
                if wid < self.fired_below || self.window.window_end(wid).0 <= wm_before {
                    self.late_drops += 1;
                    continue;
                }
                let ws = self.state.entry(wid).or_default();
                let side = if is_left { &mut ws.left } else { &mut ws.right };
                side.by_key.entry(t.key).or_default().push(t.value);
                if batch.time > ws.latest_input {
                    ws.latest_input = batch.time;
                }
            }
        }
        let wm = self.watermark.observe(channel, batch.progress.0);
        self.fire_ready(wm, out);
    }

    fn pending(&self) -> usize {
        self.state
            .values()
            .map(|w| {
                w.left.by_key.values().map(Vec::len).sum::<usize>()
                    + w.right.by_key.values().map(Vec::len).sum::<usize>()
            })
            .sum()
    }

    fn name(&self) -> &'static str {
        "window_join"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(channels: Vec<u32>) -> InstanceCtx {
        InstanceCtx {
            channels,
            instance: 0,
            parallelism: 1,
        }
    }

    fn tuple(k: u64, v: i64, p: u64) -> Tuple {
        Tuple::new(k, v, LogicalTime(p))
    }

    fn feed(
        op: &mut WindowJoin,
        channel: u32,
        tuples: Vec<Tuple>,
        progress: u64,
        arrival: u64,
    ) -> Vec<Batch> {
        let mut out = Vec::new();
        let b = Batch::with_progress(tuples, LogicalTime(progress), PhysicalTime(arrival));
        op.on_batch(channel, &b, PhysicalTime(arrival), &mut out);
        out
    }

    #[test]
    fn joins_matching_keys_in_window() {
        // Channel 0 = left (edge 0), channel 1 = right (edge 1).
        let mut op = WindowJoin::new(WindowSpec::tumbling(10), &ctx(vec![0, 1]), |l, r| l + r);
        let out = feed(&mut op, 0, vec![tuple(1, 100, 3), tuple(2, 5, 4)], 4, 10);
        assert!(out.is_empty());
        let out = feed(&mut op, 1, vec![tuple(1, 7, 5)], 5, 20);
        assert!(out.is_empty(), "window not complete yet");
        // Both channels pass 10.
        let _ = feed(&mut op, 0, vec![], 12, 30);
        let out = feed(&mut op, 1, vec![], 12, 31);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].tuples, vec![tuple(1, 107, 9)]);
        assert_eq!(out[0].time, PhysicalTime(20), "latest contributing arrival");
    }

    #[test]
    fn cross_product_within_key() {
        let mut op = WindowJoin::new(WindowSpec::tumbling(10), &ctx(vec![0, 1]), |l, r| l * r);
        let _ = feed(&mut op, 0, vec![tuple(1, 2, 1), tuple(1, 3, 2)], 2, 1);
        let _ = feed(&mut op, 1, vec![tuple(1, 5, 3), tuple(1, 7, 4)], 4, 2);
        let _ = feed(&mut op, 0, vec![], 10, 3);
        let out = feed(&mut op, 1, vec![], 10, 4);
        let mut vals: Vec<i64> = out[0].tuples.iter().map(|t| t.value).collect();
        vals.sort_unstable();
        assert_eq!(vals, vec![10, 14, 15, 21]);
    }

    #[test]
    fn unmatched_keys_produce_nothing() {
        let mut op = WindowJoin::new(WindowSpec::tumbling(10), &ctx(vec![0, 1]), |l, r| l + r);
        let _ = feed(&mut op, 0, vec![tuple(1, 1, 1)], 1, 1);
        let _ = feed(&mut op, 1, vec![tuple(2, 2, 2)], 2, 2);
        let _ = feed(&mut op, 0, vec![], 10, 3);
        let out = feed(&mut op, 1, vec![], 10, 4);
        assert_eq!(out.len(), 1);
        assert!(out[0].is_empty());
    }

    #[test]
    fn multiple_channels_per_side() {
        // Two left channels (edge 0) and one right channel (edge 1).
        let mut op = WindowJoin::new(WindowSpec::tumbling(10), &ctx(vec![0, 0, 1]), |l, r| l + r);
        let _ = feed(&mut op, 0, vec![tuple(1, 10, 1)], 1, 1);
        let _ = feed(&mut op, 1, vec![tuple(1, 20, 2)], 2, 2);
        let _ = feed(&mut op, 2, vec![tuple(1, 1, 3)], 3, 3);
        let _ = feed(&mut op, 0, vec![], 10, 4);
        let _ = feed(&mut op, 1, vec![], 10, 5);
        let out = feed(&mut op, 2, vec![], 10, 6);
        let mut vals: Vec<i64> = out[0].tuples.iter().map(|t| t.value).collect();
        vals.sort_unstable();
        assert_eq!(vals, vec![11, 21], "both left tuples join the right tuple");
    }

    #[test]
    fn snapshot_roundtrip_preserves_buffered_sides() {
        let mut op = WindowJoin::new(WindowSpec::tumbling(10), &ctx(vec![0, 1]), |l, r| l + r);
        let _ = feed(&mut op, 0, vec![tuple(1, 100, 3), tuple(2, 5, 4)], 4, 10);
        let _ = feed(&mut op, 1, vec![tuple(1, 7, 5)], 5, 20);
        let mut bytes = Vec::new();
        op.snapshot_state(&mut bytes);

        let mut restored =
            WindowJoin::new(WindowSpec::tumbling(10), &ctx(vec![0, 1]), |l, r| l + r);
        assert!(restored.restore_state(&bytes));
        let _ = feed(&mut op, 0, vec![], 12, 30);
        let a = feed(&mut op, 1, vec![], 12, 31);
        let _ = feed(&mut restored, 0, vec![], 12, 30);
        let b = feed(&mut restored, 1, vec![], 12, 31);
        assert_eq!(a, b);
        assert_eq!(a[0].tuples, vec![tuple(1, 107, 9)]);
    }

    #[test]
    fn snapshot_restore_rejects_malformed() {
        let mut op = WindowJoin::new(WindowSpec::tumbling(10), &ctx(vec![0, 1]), |l, r| l + r);
        assert!(!op.restore_state(&[9, 9, 9]));
        let mut bytes = Vec::new();
        op.snapshot_state(&mut bytes);
        bytes.truncate(bytes.len() - 1);
        assert!(!op.restore_state(&bytes));
    }

    #[test]
    fn late_tuples_counted() {
        let mut op = WindowJoin::new(WindowSpec::tumbling(10), &ctx(vec![0, 1]), |l, r| l + r);
        let _ = feed(&mut op, 0, vec![], 15, 1);
        let _ = feed(&mut op, 1, vec![], 15, 2);
        let _ = feed(&mut op, 0, vec![tuple(1, 1, 3)], 16, 3);
        assert_eq!(op.late_drops(), 1);
    }
}
