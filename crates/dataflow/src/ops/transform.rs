//! Stateless per-tuple operators (regular operators in the paper's
//! taxonomy: invoked == triggered).

use crate::event::{Batch, Tuple};
use crate::operator::{Operator, StateSnapshot};
use cameo_core::time::{Micros, PhysicalTime};

/// Applies a function to every tuple.
pub struct MapOp<F: FnMut(Tuple) -> Tuple + Send> {
    f: F,
}

impl<F: FnMut(Tuple) -> Tuple + Send> MapOp<F> {
    /// Map every tuple through `f`.
    pub fn new(f: F) -> Self {
        MapOp { f }
    }
}

// All operators in this module are stateless: the default
// `StateSnapshot` (snapshot nothing, restore only nothing) is exact.
impl<F: FnMut(Tuple) -> Tuple + Send> StateSnapshot for MapOp<F> {}

impl<F: FnMut(Tuple) -> Tuple + Send> Operator for MapOp<F> {
    fn on_batch(&mut self, _channel: u32, batch: &Batch, _now: PhysicalTime, out: &mut Vec<Batch>) {
        let tuples = batch.tuples.iter().map(|&t| (self.f)(t)).collect();
        out.push(Batch::with_progress(tuples, batch.progress, batch.time));
    }

    fn name(&self) -> &'static str {
        "map"
    }
}

/// Keeps only tuples matching a predicate. Progress still advances on
/// fully filtered batches (an empty batch is forwarded), so downstream
/// watermarks never stall.
pub struct FilterOp<F: FnMut(&Tuple) -> bool + Send> {
    f: F,
}

impl<F: FnMut(&Tuple) -> bool + Send> FilterOp<F> {
    /// Keep tuples for which `f` returns true.
    pub fn new(f: F) -> Self {
        FilterOp { f }
    }
}

impl<F: FnMut(&Tuple) -> bool + Send> StateSnapshot for FilterOp<F> {}

impl<F: FnMut(&Tuple) -> bool + Send> Operator for FilterOp<F> {
    fn on_batch(&mut self, _channel: u32, batch: &Batch, _now: PhysicalTime, out: &mut Vec<Batch>) {
        let tuples = batch
            .tuples
            .iter()
            .filter(|t| (self.f)(t))
            .copied()
            .collect();
        out.push(Batch::with_progress(tuples, batch.progress, batch.time));
    }

    fn name(&self) -> &'static str {
        "filter"
    }
}

/// Expands each tuple into zero or more tuples.
pub struct FlatMapOp<F: FnMut(Tuple, &mut Vec<Tuple>) + Send> {
    f: F,
}

impl<F: FnMut(Tuple, &mut Vec<Tuple>) + Send> FlatMapOp<F> {
    /// Expand each tuple via `f`, which appends outputs to its `Vec`.
    pub fn new(f: F) -> Self {
        FlatMapOp { f }
    }
}

impl<F: FnMut(Tuple, &mut Vec<Tuple>) + Send> StateSnapshot for FlatMapOp<F> {}

impl<F: FnMut(Tuple, &mut Vec<Tuple>) + Send> Operator for FlatMapOp<F> {
    fn on_batch(&mut self, _channel: u32, batch: &Batch, _now: PhysicalTime, out: &mut Vec<Batch>) {
        let mut tuples = Vec::with_capacity(batch.len());
        for &t in &batch.tuples {
            (self.f)(t, &mut tuples);
        }
        out.push(Batch::with_progress(tuples, batch.progress, batch.time));
    }

    fn name(&self) -> &'static str {
        "flat_map"
    }
}

/// Forwards batches untouched (useful as a parse/shuffle stage whose
/// cost is modeled rather than computed).
#[derive(Default)]
pub struct Passthrough;

impl StateSnapshot for Passthrough {}

impl Operator for Passthrough {
    fn on_batch(&mut self, _channel: u32, batch: &Batch, _now: PhysicalTime, out: &mut Vec<Batch>) {
        out.push(batch.clone());
    }

    fn name(&self) -> &'static str {
        "passthrough"
    }
}

/// A pass-through that burns real CPU for a configured duration —
/// emulates an expensive UDF under the real-time runtime. (Under the
/// simulator, costs come from the cost model instead; do not use this
/// there.)
pub struct SpinMap {
    spin: Micros,
}

impl SpinMap {
    /// A passthrough that busy-spins for `spin` per batch (models UDF
    /// cost in real time).
    pub fn new(spin: Micros) -> Self {
        SpinMap { spin }
    }
}

impl StateSnapshot for SpinMap {}

impl Operator for SpinMap {
    fn on_batch(&mut self, _channel: u32, batch: &Batch, _now: PhysicalTime, out: &mut Vec<Batch>) {
        let start = std::time::Instant::now();
        let budget = std::time::Duration::from_micros(self.spin.0);
        let mut x = 0u64;
        while start.elapsed() < budget {
            // Dependency chain the optimizer can't remove.
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            std::hint::black_box(x);
        }
        out.push(batch.clone());
    }

    fn name(&self) -> &'static str {
        "spin_map"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cameo_core::time::LogicalTime;

    fn batch(vals: &[(u64, i64)]) -> Batch {
        Batch::new(
            vals.iter()
                .enumerate()
                .map(|(i, &(k, v))| Tuple::new(k, v, LogicalTime(i as u64)))
                .collect(),
            PhysicalTime(7),
        )
    }

    #[test]
    fn map_transforms_values() {
        let mut op = MapOp::new(|mut t: Tuple| {
            t.value *= 2;
            t
        });
        let mut out = Vec::new();
        op.on_batch(0, &batch(&[(1, 10), (2, 20)]), PhysicalTime(9), &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].tuples[0].value, 20);
        assert_eq!(out[0].tuples[1].value, 40);
        assert_eq!(out[0].time, PhysicalTime(7), "stamp passes through");
    }

    #[test]
    fn filter_keeps_progress_on_empty_output() {
        let mut op = FilterOp::new(|t: &Tuple| t.value > 100);
        let mut out = Vec::new();
        let b = batch(&[(1, 10), (2, 20)]);
        op.on_batch(0, &b, PhysicalTime(9), &mut out);
        assert!(out[0].is_empty());
        assert_eq!(out[0].progress, b.progress, "watermark must still advance");
    }

    #[test]
    fn flat_map_expands() {
        let mut op = FlatMapOp::new(|t: Tuple, out: &mut Vec<Tuple>| {
            for _ in 0..t.value {
                out.push(t);
            }
        });
        let mut out = Vec::new();
        op.on_batch(0, &batch(&[(1, 3)]), PhysicalTime(9), &mut out);
        assert_eq!(out[0].len(), 3);
    }

    #[test]
    fn passthrough_is_identity() {
        let mut op = Passthrough;
        let b = batch(&[(5, 50)]);
        let mut out = Vec::new();
        op.on_batch(0, &b, PhysicalTime(9), &mut out);
        assert_eq!(out[0], b);
    }

    #[test]
    fn spin_map_burns_time_and_forwards() {
        let mut op = SpinMap::new(Micros(200));
        let b = batch(&[(1, 1)]);
        let mut out = Vec::new();
        let start = std::time::Instant::now();
        op.on_batch(0, &b, PhysicalTime(0), &mut out);
        assert!(start.elapsed().as_micros() >= 200);
        assert_eq!(out[0], b);
    }
}
