//! Keyed windowed aggregation — the workhorse of every query in the
//! paper's evaluation (§6: "our queries feature multiple stages of
//! windowed aggregation parallelized into a group of operators").
//!
//! Tuples are grouped by key into windows; when the watermark (minimum
//! stream progress over all input channels) passes a window's end, the
//! window fires and one output batch is emitted. Output tuples carry
//! logical time `window_end - 1` (the last instant the window covers) so
//! that a downstream window of the same size groups them with their own
//! window, while the output *batch* progress is `window_end`, which is
//! exactly the frontier progress `TRANSFORM` predicts — deadlines and
//! actual trigger times line up by construction.

use crate::codec::{self, Reader};
use crate::event::{Batch, Tuple};
use crate::operator::{Operator, StateSnapshot, WatermarkTracker};
use crate::window::WindowSpec;
use cameo_core::time::{LogicalTime, PhysicalTime};
use std::collections::{BTreeMap, HashMap};

/// Aggregation functions over tuple values within (window, key) groups.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Aggregation {
    /// Sum of values.
    Sum,
    /// Number of tuples.
    Count,
    /// Minimum value.
    Min,
    /// Maximum value.
    Max,
    /// Arithmetic mean (integer division).
    Mean,
}

#[derive(Clone, Copy, Debug)]
struct AggState {
    acc: i64,
    count: i64,
}

impl AggState {
    fn new() -> Self {
        AggState { acc: 0, count: 0 }
    }

    fn update(&mut self, agg: Aggregation, v: i64) {
        match agg {
            Aggregation::Sum | Aggregation::Mean => self.acc = self.acc.wrapping_add(v),
            Aggregation::Count => self.acc += 1,
            Aggregation::Min => self.acc = if self.count == 0 { v } else { self.acc.min(v) },
            Aggregation::Max => self.acc = if self.count == 0 { v } else { self.acc.max(v) },
        }
        self.count += 1;
    }

    fn finish(&self, agg: Aggregation) -> i64 {
        match agg {
            Aggregation::Mean => {
                if self.count == 0 {
                    0
                } else {
                    self.acc / self.count
                }
            }
            _ => self.acc,
        }
    }
}

#[derive(Debug, Default)]
struct WindowState {
    groups: HashMap<u64, AggState>,
    /// Physical arrival time of the latest contributing input (`t_M` of
    /// the eventual output).
    latest_input: PhysicalTime,
}

/// Keyed windowed aggregation operator.
pub struct WindowAggregate {
    window: WindowSpec,
    agg: Aggregation,
    watermark: WatermarkTracker,
    /// Open windows by id (ordered so windows fire in order).
    state: BTreeMap<u64, WindowState>,
    /// Windows with id < this have fired; late tuples are dropped.
    fired_below: u64,
    late_drops: u64,
}

impl WindowAggregate {
    /// A windowed aggregate over `num_channels` input channels.
    pub fn new(window: WindowSpec, agg: Aggregation, num_channels: u32) -> Self {
        WindowAggregate {
            window,
            agg,
            watermark: WatermarkTracker::new(num_channels.max(1) as usize),
            state: BTreeMap::new(),
            fired_below: 0,
            late_drops: 0,
        }
    }

    /// Tuples dropped because they arrived behind the watermark.
    pub fn late_drops(&self) -> u64 {
        self.late_drops
    }

    fn fire_ready(&mut self, watermark: u64, out: &mut Vec<Batch>) {
        while let Some((&wid, _)) = self.state.iter().next() {
            let end = self.window.window_end(wid);
            if end.0 > watermark {
                break;
            }
            let ws = self.state.remove(&wid).expect("peeked above");
            self.emit(wid, ws, out);
            self.fired_below = self.fired_below.max(wid + 1);
        }
    }

    fn emit(&self, wid: u64, ws: WindowState, out: &mut Vec<Batch>) {
        let end = self.window.window_end(wid);
        let tuple_time = LogicalTime(end.0 - 1);
        let mut tuples: Vec<Tuple> = ws
            .groups
            .iter()
            .map(|(&k, st)| Tuple::new(k, st.finish(self.agg), tuple_time))
            .collect();
        // HashMap order is nondeterministic; sort for reproducibility.
        tuples.sort_unstable_by_key(|t| t.key);
        out.push(Batch::with_progress(tuples, end, ws.latest_input));
    }
}

impl StateSnapshot for WindowAggregate {
    fn snapshot_state(&self, out: &mut Vec<u8>) {
        codec::put_u8(out, 1); // format version
        codec::put_u32(out, self.watermark.progress().len() as u32);
        for &p in self.watermark.progress() {
            codec::put_u64(out, p);
        }
        codec::put_u64(out, self.fired_below);
        codec::put_u64(out, self.late_drops);
        codec::put_u32(out, self.state.len() as u32);
        for (&wid, ws) in &self.state {
            codec::put_u64(out, wid);
            codec::put_u64(out, ws.latest_input.0);
            codec::put_u32(out, ws.groups.len() as u32);
            let mut keys: Vec<u64> = ws.groups.keys().copied().collect();
            keys.sort_unstable();
            for k in keys {
                let st = &ws.groups[&k];
                codec::put_u64(out, k);
                codec::put_i64(out, st.acc);
                codec::put_i64(out, st.count);
            }
        }
    }

    fn restore_state(&mut self, bytes: &[u8]) -> bool {
        let mut r = Reader::new(bytes);
        let Some(1) = r.u8() else { return false };
        let Some(nch) = r.u32() else { return false };
        if nch as usize != self.watermark.num_channels() {
            return false;
        }
        let mut per_channel = Vec::with_capacity(nch as usize);
        for _ in 0..nch {
            let Some(p) = r.u64() else { return false };
            per_channel.push(p);
        }
        let (Some(fired_below), Some(late_drops), Some(nwin)) = (r.u64(), r.u64(), r.u32()) else {
            return false;
        };
        let mut state = BTreeMap::new();
        for _ in 0..nwin {
            let (Some(wid), Some(latest), Some(ngroups)) = (r.u64(), r.u64(), r.u32()) else {
                return false;
            };
            let mut groups = HashMap::with_capacity(ngroups as usize);
            for _ in 0..ngroups {
                let (Some(k), Some(acc), Some(count)) = (r.u64(), r.i64(), r.i64()) else {
                    return false;
                };
                groups.insert(k, AggState { acc, count });
            }
            state.insert(
                wid,
                WindowState {
                    groups,
                    latest_input: PhysicalTime(latest),
                },
            );
        }
        if !r.is_empty() {
            return false;
        }
        self.watermark = WatermarkTracker::from_progress(per_channel);
        self.fired_below = fired_below;
        self.late_drops = late_drops;
        self.state = state;
        true
    }
}

impl Operator for WindowAggregate {
    fn on_batch(&mut self, channel: u32, batch: &Batch, _now: PhysicalTime, out: &mut Vec<Batch>) {
        // A tuple is late if its window already fired — or could have
        // fired: the watermark passed the window's end even if the
        // window held no data.
        let wm_before = self.watermark.watermark();
        for t in &batch.tuples {
            for wid in self.window.windows_for(t.time) {
                if wid < self.fired_below || self.window.window_end(wid).0 <= wm_before {
                    self.late_drops += 1;
                    continue;
                }
                let ws = self.state.entry(wid).or_default();
                ws.groups
                    .entry(t.key)
                    .or_insert_with(AggState::new)
                    .update(self.agg, t.value);
                if batch.time > ws.latest_input {
                    ws.latest_input = batch.time;
                }
            }
        }
        let wm = self.watermark.observe(channel, batch.progress.0);
        self.fire_ready(wm, out);
    }

    fn pending(&self) -> usize {
        self.state.values().map(|w| w.groups.len()).sum()
    }

    fn name(&self) -> &'static str {
        "window_aggregate"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tuple(k: u64, v: i64, p: u64) -> Tuple {
        Tuple::new(k, v, LogicalTime(p))
    }

    fn run(op: &mut WindowAggregate, channel: u32, tuples: Vec<Tuple>, arrival: u64) -> Vec<Batch> {
        let mut out = Vec::new();
        let b = Batch::new(tuples, PhysicalTime(arrival));
        op.on_batch(channel, &b, PhysicalTime(arrival), &mut out);
        out
    }

    #[test]
    fn tumbling_sum_fires_on_watermark() {
        let mut op = WindowAggregate::new(WindowSpec::tumbling(10), Aggregation::Sum, 1);
        // Window [0,10): two tuples, no trigger yet.
        let out = run(&mut op, 0, vec![tuple(1, 5, 3), tuple(1, 7, 8)], 100);
        assert!(out.is_empty());
        // Progress reaches 12 -> window 0 fires.
        let out = run(&mut op, 0, vec![tuple(2, 1, 12)], 200);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].tuples, vec![tuple(1, 12, 9)]);
        assert_eq!(out[0].progress, LogicalTime(10));
        assert_eq!(
            out[0].time,
            PhysicalTime(100),
            "t_M is the last *contributing* arrival"
        );
    }

    #[test]
    fn multi_channel_waits_for_all() {
        let mut op = WindowAggregate::new(WindowSpec::tumbling(10), Aggregation::Sum, 2);
        // Channel 0: a tuple in window 0 plus progress past the boundary.
        let out = run(&mut op, 0, vec![tuple(1, 5, 3), tuple(2, 0, 11)], 100);
        assert!(out.is_empty(), "channel 1 has not advanced");
        let out = run(&mut op, 1, vec![tuple(1, 6, 4), tuple(2, 0, 11)], 150);
        assert_eq!(out.len(), 1, "both channels past window end");
        // Window 0 holds key 1 from both channels.
        assert_eq!(out[0].tuples[0].value, 5 + 6);
    }

    #[test]
    fn groups_by_key_sorted() {
        let mut op = WindowAggregate::new(WindowSpec::tumbling(10), Aggregation::Count, 1);
        let out = run(
            &mut op,
            0,
            vec![
                tuple(9, 1, 1),
                tuple(3, 1, 2),
                tuple(9, 1, 3),
                tuple(3, 1, 9),
                tuple(10, 1, 12),
            ],
            50,
        );
        assert_eq!(out.len(), 1);
        let t = &out[0].tuples;
        assert_eq!(t.len(), 2);
        assert_eq!((t[0].key, t[0].value), (3, 2));
        assert_eq!((t[1].key, t[1].value), (9, 2));
    }

    #[test]
    fn min_max_mean() {
        for (agg, expect) in [
            (Aggregation::Min, 2),
            (Aggregation::Max, 9),
            (Aggregation::Mean, 5),
        ] {
            let mut op = WindowAggregate::new(WindowSpec::tumbling(10), agg, 1);
            let out = run(
                &mut op,
                0,
                vec![
                    tuple(1, 9, 1),
                    tuple(1, 2, 2),
                    tuple(1, 4, 3),
                    tuple(1, 1, 10),
                ],
                50,
            );
            assert_eq!(out[0].tuples[0].value, expect, "{agg:?}");
        }
    }

    #[test]
    fn sliding_window_counts_overlaps() {
        // size 20, slide 10: tuple at p=15 is in windows 0 ([0,20)) and 1 ([10,30)).
        let mut op = WindowAggregate::new(WindowSpec::sliding(20, 10), Aggregation::Sum, 1);
        let out = run(&mut op, 0, vec![tuple(1, 3, 15)], 10);
        assert!(out.is_empty());
        // Watermark 30 fires windows 0 and 1.
        let out = run(&mut op, 0, vec![tuple(1, 100, 30)], 20);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].progress, LogicalTime(20));
        assert_eq!(out[0].tuples[0].value, 3);
        assert_eq!(out[1].progress, LogicalTime(30));
        assert_eq!(out[1].tuples[0].value, 3);
    }

    #[test]
    fn late_tuples_dropped_and_counted() {
        let mut op = WindowAggregate::new(WindowSpec::tumbling(10), Aggregation::Sum, 1);
        let _ = run(&mut op, 0, vec![tuple(1, 1, 15)], 10); // fires window 0 (empty)
        let out = run(&mut op, 0, vec![tuple(1, 5, 3)], 20); // p=3 is late
        assert!(out.iter().all(|b| b.tuples.iter().all(|t| t.value != 5)));
        assert_eq!(op.late_drops(), 1);
    }

    #[test]
    fn windows_fire_in_order() {
        let mut op = WindowAggregate::new(WindowSpec::tumbling(10), Aggregation::Sum, 1);
        let out = run(
            &mut op,
            0,
            vec![
                tuple(1, 1, 5),
                tuple(1, 2, 15),
                tuple(1, 3, 25),
                tuple(1, 4, 31),
            ],
            10,
        );
        // Windows 0,1,2 all complete at watermark 31.
        assert_eq!(out.len(), 3);
        assert!(out.windows(2).all(|w| w[0].progress < w[1].progress));
    }

    #[test]
    fn empty_punctuation_advances_watermark() {
        let mut op = WindowAggregate::new(WindowSpec::tumbling(10), Aggregation::Sum, 1);
        let _ = run(&mut op, 0, vec![tuple(1, 5, 3)], 10);
        let mut out = Vec::new();
        op.on_batch(
            0,
            &Batch::punctuation(LogicalTime(10), PhysicalTime(20)),
            PhysicalTime(20),
            &mut out,
        );
        assert_eq!(out.len(), 1, "punctuation alone can fire a window");
        assert_eq!(out[0].tuples[0].value, 5);
    }

    #[test]
    fn snapshot_roundtrip_preserves_open_windows() {
        let mut op = WindowAggregate::new(WindowSpec::tumbling(10), Aggregation::Sum, 1);
        let _ = run(&mut op, 0, vec![tuple(1, 5, 3), tuple(2, 7, 14)], 100);
        let _ = run(&mut op, 0, vec![tuple(1, 1, 15)], 110); // fires window 0
        let mut bytes = Vec::new();
        op.snapshot_state(&mut bytes);

        let mut restored = WindowAggregate::new(WindowSpec::tumbling(10), Aggregation::Sum, 1);
        assert!(restored.restore_state(&bytes));
        // Both operators must now behave identically.
        let a = run(&mut op, 0, vec![tuple(9, 9, 25)], 200);
        let b = run(&mut restored, 0, vec![tuple(9, 9, 25)], 200);
        assert_eq!(a, b);
        assert!(!a.is_empty(), "window 1 fires with restored contents");
        // And snapshot bytes are deterministic.
        let mut bytes2 = Vec::new();
        op.snapshot_state(&mut bytes2);
        let mut bytes3 = Vec::new();
        restored.snapshot_state(&mut bytes3);
        assert_eq!(bytes2, bytes3);
    }

    #[test]
    fn snapshot_restore_rejects_garbage() {
        let mut op = WindowAggregate::new(WindowSpec::tumbling(10), Aggregation::Sum, 1);
        assert!(!op.restore_state(&[0xFF, 1, 2, 3]));
        // Channel-count mismatch is rejected too.
        let mut two_ch = WindowAggregate::new(WindowSpec::tumbling(10), Aggregation::Sum, 2);
        let mut bytes = Vec::new();
        op.snapshot_state(&mut bytes);
        assert!(!two_ch.restore_state(&bytes));
        // Trailing junk after a valid snapshot is rejected.
        bytes.push(0);
        let mut op2 = WindowAggregate::new(WindowSpec::tumbling(10), Aggregation::Sum, 1);
        assert!(!op2.restore_state(&bytes));
    }

    #[test]
    fn output_tuple_time_feeds_next_same_size_window() {
        // Chain property: output tuple of window k has logical time inside
        // downstream window k (same size): end-1.
        let mut op = WindowAggregate::new(WindowSpec::tumbling(10), Aggregation::Sum, 1);
        let out = run(&mut op, 0, vec![tuple(1, 5, 3), tuple(1, 2, 11)], 10);
        assert_eq!(out[0].tuples[0].time, LogicalTime(9));
    }
}
