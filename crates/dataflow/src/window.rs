//! Window specifications and assignment (§4.1: "windowed operators
//! partition the data stream into sections by logical times and trigger
//! only when all data from the section are observed").
//!
//! Windows are half-open intervals of logical time. A **tumbling**
//! window of size `w` covers `[k·w, (k+1)·w)`; a **sliding** window of
//! size `w` and slide `s` (with `s ≤ w`) covers `[k·s, k·s + w)` for
//! every integer `k`, so each tuple belongs to `w/s` windows.

use cameo_core::time::LogicalTime;
use cameo_core::transform::Slide;

/// A window specification over logical time.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WindowSpec {
    /// Consecutive, non-overlapping windows of `size` logical units.
    Tumbling {
        /// Window size in logical units.
        size: u64,
    },
    /// Overlapping windows of `size` units advancing by `slide`.
    Sliding {
        /// Window size in logical units.
        size: u64,
        /// Advance step in logical units (divides `size`).
        slide: u64,
    },
}

impl WindowSpec {
    /// A tumbling window of `size` logical units.
    pub fn tumbling(size: u64) -> Self {
        assert!(size > 0, "window size must be positive");
        WindowSpec::Tumbling { size }
    }

    /// A sliding window of `size` units advancing by `slide`.
    pub fn sliding(size: u64, slide: u64) -> Self {
        assert!(slide > 0 && size >= slide, "need 0 < slide <= size");
        assert!(
            size.is_multiple_of(slide),
            "size must be a multiple of slide"
        );
        WindowSpec::Sliding { size, slide }
    }

    /// The operator's trigger step (`S_o` in §4.3): window size for
    /// tumbling, slide for sliding windows.
    pub fn slide(&self) -> Slide {
        match *self {
            WindowSpec::Tumbling { size } => Slide(size),
            WindowSpec::Sliding { slide, .. } => Slide(slide),
        }
    }

    /// The window's span in logical units.
    pub fn size(&self) -> u64 {
        match *self {
            WindowSpec::Tumbling { size } => size,
            WindowSpec::Sliding { size, .. } => size,
        }
    }

    /// Ids of the windows containing logical time `p`. Window `k` covers
    /// `[k·slide, k·slide + size)`; the id is `k`.
    pub fn windows_for(&self, p: LogicalTime) -> WindowIter {
        let (size, slide) = (self.size(), self.slide().0);
        // largest k with k*slide <= p
        let last = p.0 / slide;
        // smallest k with k*slide + size > p, clamped at 0
        let first = (p.0 + slide).saturating_sub(size) / slide;
        WindowIter {
            next: first,
            last,
            slide,
            size,
        }
    }

    /// The logical end (trigger point) of window `k`.
    pub fn window_end(&self, k: u64) -> LogicalTime {
        LogicalTime(k.saturating_mul(self.slide().0).saturating_add(self.size()))
    }

    /// The logical start of window `k`.
    pub fn window_start(&self, k: u64) -> LogicalTime {
        LogicalTime(k.saturating_mul(self.slide().0))
    }
}

/// Iterator over the window ids a tuple belongs to.
pub struct WindowIter {
    next: u64,
    last: u64,
    slide: u64,
    size: u64,
}

impl Iterator for WindowIter {
    type Item = u64;

    fn next(&mut self) -> Option<u64> {
        if self.next > self.last {
            return None;
        }
        let k = self.next;
        self.next += 1;
        Some(k)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = (self.last + 1 - self.next) as usize;
        (n, Some(n))
    }
}

impl WindowIter {
    /// Number of windows a tuple belongs to (`size / slide`).
    pub fn expected(&self) -> u64 {
        self.size / self.slide
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tumbling_assignment_is_unique() {
        let w = WindowSpec::tumbling(10);
        assert_eq!(w.windows_for(LogicalTime(0)).collect::<Vec<_>>(), vec![0]);
        assert_eq!(w.windows_for(LogicalTime(9)).collect::<Vec<_>>(), vec![0]);
        assert_eq!(w.windows_for(LogicalTime(10)).collect::<Vec<_>>(), vec![1]);
        assert_eq!(w.windows_for(LogicalTime(25)).collect::<Vec<_>>(), vec![2]);
    }

    #[test]
    fn tumbling_bounds() {
        let w = WindowSpec::tumbling(10);
        assert_eq!(w.window_start(2), LogicalTime(20));
        assert_eq!(w.window_end(2), LogicalTime(30));
        assert_eq!(w.slide(), Slide(10));
    }

    #[test]
    fn sliding_assignment_overlaps() {
        // size 30, slide 10: tuple at p=25 is in windows starting at 0, 10, 20.
        let w = WindowSpec::sliding(30, 10);
        assert_eq!(
            w.windows_for(LogicalTime(25)).collect::<Vec<_>>(),
            vec![0, 1, 2]
        );
        // Early tuples belong to fewer windows (no negative starts).
        assert_eq!(w.windows_for(LogicalTime(5)).collect::<Vec<_>>(), vec![0]);
        assert_eq!(
            w.windows_for(LogicalTime(15)).collect::<Vec<_>>(),
            vec![0, 1]
        );
    }

    #[test]
    fn sliding_window_count_matches_ratio() {
        let w = WindowSpec::sliding(40, 10);
        // A mature tuple belongs to exactly size/slide windows.
        let ids: Vec<_> = w.windows_for(LogicalTime(100)).collect();
        assert_eq!(ids.len(), 4);
        assert_eq!(ids, vec![7, 8, 9, 10]);
        for &k in &ids {
            let start = w.window_start(k).0;
            let end = w.window_end(k).0;
            assert!(
                start <= 100 && 100 < end,
                "window {k} [{start},{end}) must contain 100"
            );
        }
    }

    #[test]
    fn every_window_containing_p_is_reported() {
        let w = WindowSpec::sliding(50, 10);
        for p in 0..200u64 {
            let ids: Vec<u64> = w.windows_for(LogicalTime(p)).collect();
            for k in 0..30u64 {
                let contains = w.window_start(k).0 <= p && p < w.window_end(k).0;
                assert_eq!(
                    ids.contains(&k),
                    contains,
                    "p={p} window={k} mismatch (ids={ids:?})"
                );
            }
        }
    }

    #[test]
    #[should_panic]
    fn slide_larger_than_size_rejected() {
        let _ = WindowSpec::sliding(10, 20);
    }

    #[test]
    fn slide_accessors() {
        assert_eq!(WindowSpec::tumbling(7).slide(), Slide(7));
        assert_eq!(WindowSpec::sliding(20, 5).slide(), Slide(5));
        assert_eq!(WindowSpec::sliding(20, 5).size(), 20);
    }
}
