//! Events, tuples and message batches.
//!
//! Following Trill (the operator library the paper runs inside Flare),
//! operators exchange *batches* of tuples rather than single events:
//! one scheduled message carries a batch, which is what makes
//! fine-grained scheduling affordable (Fig 12/13 study exactly this
//! trade-off).

use cameo_core::time::{LogicalTime, PhysicalTime};

/// One data tuple: a routing/grouping key, a value, and the tuple's
/// logical time (stream progress).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Tuple {
    /// Routing / grouping key.
    pub key: u64,
    /// Payload value (aggregated, joined, filtered on).
    pub value: i64,
    /// The tuple's logical time (stream progress coordinate).
    pub time: LogicalTime,
}

impl Tuple {
    /// A tuple with the given key, value and logical time.
    pub fn new(key: u64, value: i64, time: LogicalTime) -> Self {
        Tuple { key, value, time }
    }
}

/// A batch of tuples travelling as one scheduled message.
///
/// * `progress` is the stream progress after this batch (`p_M`): the
///   maximum logical time of any tuple inside, carried explicitly so
///   empty control batches still advance watermarks.
/// * `time` is the physical time at which the last event contributing
///   to this batch was observed at a source (`t_M`) — the baseline for
///   the paper's latency definition (§4.1).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Batch {
    /// The tuples travelling together.
    pub tuples: Vec<Tuple>,
    /// Stream progress after this batch (`p_M`).
    pub progress: LogicalTime,
    /// Source-observation time of the latest contributing event (`t_M`).
    pub time: PhysicalTime,
}

impl Batch {
    /// Build a batch from tuples, deriving `progress` from their maximum
    /// logical time.
    pub fn new(tuples: Vec<Tuple>, time: PhysicalTime) -> Self {
        let progress = tuples
            .iter()
            .map(|t| t.time)
            .max()
            .unwrap_or(LogicalTime::ZERO);
        Batch {
            tuples,
            progress,
            time,
        }
    }

    /// A batch with explicit progress (used by window triggers, whose
    /// progress is the window boundary rather than a tuple time).
    pub fn with_progress(tuples: Vec<Tuple>, progress: LogicalTime, time: PhysicalTime) -> Self {
        Batch {
            tuples,
            progress,
            time,
        }
    }

    /// An empty punctuation batch that only advances stream progress.
    pub fn punctuation(progress: LogicalTime, time: PhysicalTime) -> Self {
        Batch {
            tuples: Vec::new(),
            progress,
            time,
        }
    }

    /// Number of tuples in the batch.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// True when the batch carries no tuples (pure progress).
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_progress_is_max_tuple_time() {
        let b = Batch::new(
            vec![
                Tuple::new(1, 10, LogicalTime(5)),
                Tuple::new(2, 20, LogicalTime(9)),
                Tuple::new(3, 30, LogicalTime(7)),
            ],
            PhysicalTime(100),
        );
        assert_eq!(b.progress, LogicalTime(9));
        assert_eq!(b.time, PhysicalTime(100));
        assert_eq!(b.len(), 3);
    }

    #[test]
    fn empty_batch() {
        let b = Batch::new(vec![], PhysicalTime(1));
        assert_eq!(b.progress, LogicalTime::ZERO);
        assert!(b.is_empty());
        let p = Batch::punctuation(LogicalTime(50), PhysicalTime(2));
        assert_eq!(p.progress, LogicalTime(50));
        assert!(p.is_empty());
    }

    #[test]
    fn explicit_progress_overrides() {
        let b = Batch::with_progress(
            vec![Tuple::new(1, 1, LogicalTime(3))],
            LogicalTime(10),
            PhysicalTime(4),
        );
        assert_eq!(b.progress, LogicalTime(10));
    }
}
