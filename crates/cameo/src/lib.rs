//! # cameo
//!
//! Facade crate for the full Cameo stack — a from-scratch Rust
//! reproduction of *"Move Fast and Meet Deadlines: Fine-grained
//! Real-time Stream Processing with Cameo"* (NSDI 2021):
//!
//! * [`core`] — the scheduling framework: priority contexts, the
//!   pluggable policy API (LLF/EDF/SJF/FIFO/token fair sharing),
//!   frontier mapping, cost profiling, and the stateless two-level
//!   scheduler.
//! * [`dataflow`] — the streaming substrate: events, windows,
//!   operators (map/filter/flat-map/aggregate/join), job graphs and
//!   their expansion into wired operator instances.
//! * [`runtime`] — the real-time actor runtime: a worker pool draining
//!   the Cameo scheduler under wall-clock time, with in-process and
//!   TCP ingestion.
//! * [`sim`] — the deterministic discrete-event cluster simulator used
//!   by the paper-figure experiments in `cameo-bench`.
//!
//! ## Quickstart
//!
//! The control plane is fallible and full-lifecycle: `deploy` validates
//! the job graph and returns `Result`, every per-job call checks the
//! generational [`JobHandle`](runtime::runtime::JobHandle), and
//! `undeploy` drains and retires a job, freeing its slot for reuse —
//! a stale handle gets `JobError::Stale`, never another job's data.
//!
//! ```no_run
//! use cameo::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Deploy a 1s tumbling-window aggregation with an 800ms target.
//! let rt = Runtime::start(RuntimeConfig::default().with_workers(4));
//! let spec = ipq1(1_000_000, Micros::from_millis(800));
//! let job = rt.deploy(&spec, &ExpandOptions::default())?;
//!
//! // Feed events and read windowed outputs.
//! rt.ingest(job, 0, vec![Tuple::new(7, 42, LogicalTime(0))])?;
//! let stats = rt.job_stats(job)?;
//! println!("p99 latency so far: {}", stats.p99);
//!
//! // Tear the job down: drain in-flight work, retire it in the
//! // scheduler, recycle the slot.
//! rt.undeploy(job)?;
//! assert!(rt.job_stats(job).is_err(), "handle is stale now");
//! rt.shutdown();
//! # Ok(())
//! # }
//! ```

pub use cameo_core as core;
pub use cameo_dataflow as dataflow;
pub use cameo_runtime as runtime;
pub use cameo_sim as sim;

/// Everything most applications need.
pub mod prelude {
    pub use cameo_core::prelude::*;
    pub use cameo_dataflow::prelude::*;
    pub use cameo_runtime::prelude::*;
    pub use cameo_sim::prelude::*;
}
